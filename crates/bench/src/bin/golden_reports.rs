//! Dumps full execution reports and outputs for a fixed workload matrix as
//! JSON — the regression golden for "perf work must not change semantics".
//!
//! Usage: `golden_reports > golden.json`. Two builds of the simulator are
//! functionally and timing-model equivalent iff their outputs are
//! byte-identical: the dump covers every field of
//! [`ExecutionReport`](flexagon_core::ExecutionReport)
//! (cycles, per-phase clocks, traffic, cache stats, counters) plus the
//! functional output matrix for all six dataflows over a spread of shapes
//! and sparsities.
//!
//! `FLEXAGON_SHARD_GRAIN` / `FLEXAGON_SHARD_WORKERS` configure the
//! intra-layer sharded engine, which is how the parallel determinism
//! guarantee is verified end to end: with a fixed grain, dumps at worker
//! counts 1, 2 and 4 must be byte-identical (`cmp` them).

use flexagon_core::{Accelerator, AcceleratorConfig, Dataflow, ExecutionRequest, Flexagon};
use flexagon_sparse::{gen, MajorOrder};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn env_knob(name: &str) -> Option<usize> {
    std::env::var(name).ok().map(|v| {
        v.parse()
            .unwrap_or_else(|_| panic!("{name}: '{v}' is not a count"))
    })
}

fn main() {
    // (m, k, n, density_a, density_b, seed)
    let cases: &[(u32, u32, u32, f64, f64, u64)] = &[
        (32, 48, 40, 0.30, 0.20, 1),
        (96, 64, 80, 0.10, 0.40, 2),
        (160, 160, 160, 0.05, 0.05, 3),
        (64, 512, 48, 0.20, 0.15, 4),
        (8, 8, 8, 1.00, 1.00, 5),
    ];
    let mut cfg = AcceleratorConfig::table5();
    cfg.engine = cfg.engine.sharded(
        env_knob("FLEXAGON_SHARD_GRAIN").unwrap_or(0),
        env_knob("FLEXAGON_SHARD_WORKERS").unwrap_or(1),
    );
    let accel = Flexagon::new(cfg);
    println!("[");
    let mut first = true;
    for &(m, k, n, da, db, seed) in cases {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let a = gen::random(m, k, da, MajorOrder::Row, &mut rng);
        let b = gen::random(k, n, db, MajorOrder::Row, &mut rng);
        for df in Dataflow::ALL {
            let out = accel
                .execute(ExecutionRequest::new(&a, &b).dataflow(df))
                .expect("golden run")
                .output;
            if !first {
                println!(",");
            }
            first = false;
            let label = format!("{m}x{k}x{n}/da{da}/db{db}/seed{seed}/{df}");
            print!(
                "{{\"case\": \"{label}\", \"report\": {}, \"c\": {}}}",
                serde_json::to_string(&out.report).expect("report serializes"),
                serde_json::to_string(&out.c).expect("matrix serializes"),
            );
        }
    }
    println!("\n]");
}
