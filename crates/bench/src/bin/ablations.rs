//! Ablation sweeps over the design choices Table 5 fixes: multiplier count,
//! STR cache capacity, PSRAM capacity and merge bandwidth.
//!
//! These are extensions beyond the paper's figures: they quantify how much
//! each provisioning decision matters on a representative layer from each
//! dataflow group.
//!
//! Run with `cargo run --release -p flexagon-bench --bin ablations`.

use flexagon_bench::render::table;
use flexagon_bench::DEFAULT_SEED;
use flexagon_core::{Accelerator, AcceleratorConfig, Dataflow, ExecutionRequest, Flexagon};
use flexagon_dnn::table6;

fn run_with(cfg: AcceleratorConfig, layer_id: &str, dataflow: Dataflow) -> u64 {
    let layer = table6::by_id(layer_id).expect("known layer");
    let mats = layer.spec.materialize(DEFAULT_SEED);
    Flexagon::new(cfg)
        .execute(ExecutionRequest::new(&mats.a, &mats.b).dataflow(dataflow))
        .expect("run")
        .output
        .report
        .total_cycles
}

fn main() {
    println!("Ablations on Flexagon's Table 5 provisioning\n");

    println!("(a) Multiplier count (layer V7, Gustavson's):");
    let mut rows = Vec::new();
    for mults in [16u32, 32, 64, 128, 256] {
        let mut cfg = AcceleratorConfig::table5();
        cfg.multipliers = mults;
        rows.push(vec![
            mults.to_string(),
            run_with(cfg, "V7", Dataflow::GustavsonM).to_string(),
        ]);
    }
    println!("{}", table(&["multipliers", "cycles"], &rows));

    println!("(b) STR cache capacity (layer R6, Gustavson's — large B):");
    let mut rows = Vec::new();
    for shift in [16u32, 18, 20, 22] {
        let mut cfg = AcceleratorConfig::table5();
        cfg.memory.cache.capacity_bytes = 1 << shift;
        rows.push(vec![
            format!("{} KiB", (1u64 << shift) >> 10),
            run_with(cfg, "R6", Dataflow::GustavsonM).to_string(),
        ]);
    }
    println!("{}", table(&["cache", "cycles"], &rows));

    println!("(c) PSRAM capacity (layer S-R3, Outer Product — psum heavy):");
    let mut rows = Vec::new();
    for kib in [32u64, 64, 128, 256, 512] {
        let mut cfg = AcceleratorConfig::table5();
        cfg.memory.psram.capacity_bytes = kib << 10;
        rows.push(vec![
            format!("{kib} KiB"),
            run_with(cfg, "S-R3", Dataflow::OuterProductM).to_string(),
        ]);
    }
    println!("{}", table(&["psram", "cycles"], &rows));

    println!("(d) Merge bandwidth (layer A2, Gustavson's):");
    let mut rows = Vec::new();
    for bw in [4u64, 8, 16, 32, 64] {
        let mut cfg = AcceleratorConfig::table5();
        cfg.merge_bandwidth = bw;
        rows.push(vec![
            format!("{bw}/cycle"),
            run_with(cfg, "A2", Dataflow::GustavsonM).to_string(),
        ]);
    }
    println!("{}", table(&["merge bw", "cycles"], &rows));

    println!("(e) Distribution bandwidth (layer SQ5, Inner Product):");
    let mut rows = Vec::new();
    for bw in [4u64, 8, 16, 32, 64] {
        let mut cfg = AcceleratorConfig::table5();
        cfg.dn_bandwidth = bw;
        rows.push(vec![
            format!("{bw}/cycle"),
            run_with(cfg, "SQ5", Dataflow::InnerProductM).to_string(),
        ]);
    }
    println!("{}", table(&["dn bw", "cycles"], &rows));
}
