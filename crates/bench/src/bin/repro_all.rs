//! Runs the complete reproduction: every table and figure binary's content
//! in one pass, writing the combined report to `results/repro_report.txt`.
//!
//! Run with `cargo run --release -p flexagon-bench --bin repro_all`.
//! Expect a few minutes of runtime for the end-to-end model sweeps.

use std::process::Command;

const BINS: &[&str] = &[
    "table3_taxonomy",
    "table4_transitions",
    "table6_layers",
    "table8_area_power",
    "fig17_naive_design",
    "fig13_layerwise",
    "fig14_onchip_traffic",
    "fig15_miss_rate",
    "fig16_offchip_traffic",
    "table2_models",
    "fig01_best_dataflow",
    "fig12_end_to_end",
    "fig18_perf_per_area",
    "ablations",
];

fn main() {
    let mut combined = String::new();
    for bin in BINS {
        eprintln!("==> {bin}");
        let out = Command::new(
            std::env::current_exe()
                .expect("self path")
                .with_file_name(bin),
        )
        .output()
        .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        assert!(
            out.status.success(),
            "{bin} failed:\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
        combined.push('\n');
        combined.push_str(&"=".repeat(72));
        combined.push_str(&format!("\n== {bin}\n"));
        combined.push_str(&"=".repeat(72));
        combined.push('\n');
        combined.push_str(&String::from_utf8_lossy(&out.stdout));
    }
    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write("results/repro_report.txt", &combined).expect("write report");
    println!("{combined}");
    println!("\nCombined report written to results/repro_report.txt");
}
