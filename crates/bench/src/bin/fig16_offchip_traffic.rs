//! Fig. 16: off-chip (DRAM) traffic for the four accelerators on the nine
//! Table 6 layers.
//!
//! Run with `cargo run --release -p flexagon-bench --bin fig16_offchip_traffic`.

use flexagon_bench::render::{kib, table};
use flexagon_bench::{run_layer, SystemId, DEFAULT_SEED};
use flexagon_dnn::table6;

fn main() {
    println!("Fig. 16 — off-chip data traffic in KiB\n");
    let systems = [
        SystemId::SigmaLike,
        SystemId::SparchLike,
        SystemId::GammaLike,
        SystemId::Flexagon,
    ];
    let mut rows = Vec::new();
    for layer in table6::layers() {
        let r = run_layer(&layer.spec, DEFAULT_SEED);
        for system in systems {
            let t = &r.of(system).traffic;
            rows.push(vec![
                layer.id.to_string(),
                system.name().to_string(),
                kib(t.str_fill_bytes),
                kib(t.dram_read_bytes),
                kib(t.dram_write_bytes),
                kib(t.offchip_total()),
            ]);
        }
    }
    println!(
        "{}",
        table(
            &[
                "layer",
                "system",
                "STR fills (KiB)",
                "DRAM reads",
                "DRAM writes",
                "total"
            ],
            &rows
        )
    );
    println!(
        "Expected shape: GAMMA-like ≈ Sparch-like on small-B layers (MB215,\n\
         V7, A2); GAMMA-like several times higher on large-B layers (R6,\n\
         S-R3, V0); SIGMA-like explodes when B reloads per tile (V0)."
    );
}
