//! Tables 3 and 5: the dataflow taxonomy and the accelerator configuration.
//!
//! Run with `cargo run --release -p flexagon-bench --bin table3_taxonomy`.

use flexagon_bench::render::table;
use flexagon_core::{AcceleratorConfig, Dataflow};

fn main() {
    println!("Table 3 — taxonomy of dataflow properties\n");
    let rows: Vec<Vec<String>> = Dataflow::ALL
        .into_iter()
        .map(|d| {
            vec![
                d.loop_order().to_string(),
                d.informal_name().to_string(),
                d.a_format().format_name().to_string(),
                d.b_format().format_name().to_string(),
                d.c_format().format_name().to_string(),
                d.intersection().to_string(),
                d.merging().to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        table(
            &[
                "Dataflow",
                "Informal Name",
                "A",
                "B",
                "C",
                "Intersection",
                "Merging"
            ],
            &rows
        )
    );

    println!("Table 5 — configuration parameters of Flexagon\n");
    let cfg = AcceleratorConfig::table5();
    let rows = vec![
        vec!["Number of Multipliers".into(), cfg.multipliers.to_string()],
        vec!["Number of Adders".into(), cfg.adders().to_string()],
        vec![
            "Distribution bandwidth".into(),
            format!("{} elems/cycle", cfg.dn_bandwidth),
        ],
        vec![
            "Reduction/Merging bandwidth".into(),
            format!("{} elems/cycle", cfg.merge_bandwidth),
        ],
        vec!["Total Word Size".into(), "32 bits".into()],
        vec![
            "L1 Access Latency".into(),
            format!("{} cycle", cfg.l1_latency),
        ],
        vec![
            "L1 STA FIFO Size".into(),
            format!("{} bytes", cfg.memory.fifo.capacity_bytes),
        ],
        vec![
            "L1 STR cache Size".into(),
            format!("{} MiB", cfg.memory.cache.capacity_bytes >> 20),
        ],
        vec![
            "L1 STR Cache Line Size".into(),
            format!("{} bytes", cfg.memory.cache.line_bytes),
        ],
        vec![
            "L1 STR Cache Associativity".into(),
            cfg.memory.cache.associativity.to_string(),
        ],
        vec![
            "L1 STR Cache Number of Banks".into(),
            cfg.memory.cache.banks.to_string(),
        ],
        vec![
            "PSRAM".into(),
            format!("{} KiB", cfg.memory.psram.capacity_bytes >> 10),
        ],
        vec![
            "DRAM access time / Bandwidth".into(),
            format!(
                "{} cycles / {} B/cycle",
                cfg.memory.dram.latency_cycles, cfg.memory.dram.bytes_per_cycle
            ),
        ],
    ];
    println!("{}", table(&["Parameter", "Value"], &rows));
}
