//! Table 6: the nine representative DNN layers, their measured compressed
//! sizes, and the calibrated heuristic mapper's feature-only pick for each
//! (the accuracy audit proper — oracle comparison over the whole suite —
//! is the `mapper_accuracy` binary).
//!
//! Run with `cargo run --release -p flexagon-bench --bin table6_layers`.

use flexagon_bench::render::{kib, table};
use flexagon_bench::DEFAULT_SEED;
use flexagon_core::{mapper, AcceleratorConfig};
use flexagon_dnn::table6;
use flexagon_sparse::reference;

fn main() {
    println!("Table 6 — representative DNN layers (measured)\n");
    let cfg = AcceleratorConfig::table5();
    let mut rows = Vec::new();
    for layer in table6::layers() {
        let mats = layer.spec.materialize(DEFAULT_SEED);
        let c = reference::spgemm(&mats.a, &mats.b).expect("well-formed layer");
        let predicted = mapper::heuristic(&cfg, &mats.a, &mats.b);
        rows.push(vec![
            layer.id.to_string(),
            format!("{}, {}, {}", layer.spec.m, layer.spec.n, layer.spec.k),
            format!("{:.0}", mats.a.sparsity_percent()),
            format!("{:.0}", mats.b.sparsity_percent()),
            kib(mats.a.compressed_size_bytes()),
            kib(mats.b.compressed_size_bytes()),
            kib(c.compressed_size_bytes()),
            format!("{:?}", layer.favours),
            predicted.to_string(),
        ]);
    }
    println!(
        "{}",
        table(
            &[
                "Layer",
                "M, N, K",
                "spA",
                "spB",
                "csA KiB",
                "csB KiB",
                "csC KiB",
                "favours",
                "heuristic picks",
            ],
            &rows
        )
    );
}
