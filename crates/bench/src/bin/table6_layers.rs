//! Table 6: the nine representative DNN layers and their measured
//! compressed sizes.
//!
//! Run with `cargo run --release -p flexagon-bench --bin table6_layers`.

use flexagon_bench::render::{kib, table};
use flexagon_bench::DEFAULT_SEED;
use flexagon_dnn::table6;
use flexagon_sparse::reference;

fn main() {
    println!("Table 6 — representative DNN layers (measured)\n");
    let mut rows = Vec::new();
    for layer in table6::layers() {
        let mats = layer.spec.materialize(DEFAULT_SEED);
        let c = reference::spgemm(&mats.a, &mats.b).expect("well-formed layer");
        rows.push(vec![
            layer.id.to_string(),
            format!("{}, {}, {}", layer.spec.m, layer.spec.n, layer.spec.k),
            format!("{:.0}", mats.a.sparsity_percent()),
            format!("{:.0}", mats.b.sparsity_percent()),
            kib(mats.a.compressed_size_bytes()),
            kib(mats.b.compressed_size_bytes()),
            kib(c.compressed_size_bytes()),
            format!("{:?}", layer.favours),
        ]);
    }
    println!(
        "{}",
        table(
            &["Layer", "M, N, K", "spA", "spB", "csA KiB", "csB KiB", "csC KiB", "favours"],
            &rows
        )
    );
}
