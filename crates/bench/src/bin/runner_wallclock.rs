//! Multi-core wall-clock bench for the rayon model runner (ROADMAP item (a)).
//!
//! The criterion suites measure single-simulation kernels; the parallel
//! fan-out of `flexagon_bench::runner` (layers x systems across cores) only
//! shows up in end-to-end wall clock. This binary times `run_model` over a
//! fixed synthetic model and appends a result record — including the rayon
//! thread count — to the `FLEXAGON_BENCH_JSON` results file, in the same
//! line format the criterion shim emits plus a `"threads"` field.
//!
//! `bench_guard` gates each recorded number only when a measurement exists
//! at the baseline's thread count, so the benchmark is always *run* (even
//! when `available_parallelism() == 1`) without ever comparing wall clocks
//! across different parallelism. To cover multi-core baselines (ROADMAP
//! item (a); GitHub-hosted runners have 4 vCPUs), one invocation can
//! measure several thread counts: `FLEXAGON_BENCH_THREADS` is a
//! comma-separated list (e.g. `1,4`), each measured in turn by setting
//! `RAYON_NUM_THREADS` — the vendored rayon shim sizes every parallel
//! operation from the environment, honoring requests above the hardware
//! parallelism exactly like real rayon's global-pool variable (a count
//! above the core count oversubscribes). Default: the ambient thread
//! count only.
//!
//! The other knobs mirror the criterion shim: `FLEXAGON_BENCH_MS`
//! (measurement budget, default 300) and `FLEXAGON_BENCH_JSON` (output
//! path; relative paths resolve against the workspace root).

use flexagon_bench::runner::{self, RunOptions, DEFAULT_SEED};
use flexagon_core::EngineConfig;
use flexagon_dnn::{DnnModel, Domain, LayerSpec};
use std::io::Write;
use std::time::Instant;

/// Shard grain for the intra-layer-sharded configuration: the synthetic
/// layers carry ~3.7k stationary nonzeros, so a 512-nonzero grain yields
/// roughly seven bands per layer — enough slack for four shard workers.
const SHARD_GRAIN_NNZ: usize = 512;

/// A small fixed model: large enough that the per-layer fan-out dominates,
/// small enough for a smoke budget.
fn bench_model() -> DnnModel {
    let layers = (0..8)
        .map(|i| LayerSpec::new(i, format!("wall{i}"), 96, 128, 96, 70.0, 60.0))
        .collect();
    DnnModel {
        name: "Runner wall-clock synthetic",
        short: "W",
        domain: Domain::ComputerVision,
        layers,
    }
}

fn budget_ms() -> u64 {
    std::env::var("FLEXAGON_BENCH_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(300)
}

/// Resolves the results path exactly like the criterion shim, so this
/// bin's records land in the same file the bench harnesses append to.
fn results_path() -> std::path::PathBuf {
    let path = std::env::var("FLEXAGON_BENCH_JSON")
        .unwrap_or_else(|_| "target/bench_results.json".to_string());
    criterion::resolve_output_path(&path)
}

/// Thread counts to measure: `FLEXAGON_BENCH_THREADS` as a comma-separated
/// list (deduplicated, order preserved), or the ambient count.
///
/// # Panics
///
/// Panics on a malformed token — silently dropping one would leave a
/// recorded wall-clock baseline unmeasured, and `bench_guard` only prints
/// an easily-missed skip line for that, so a CI typo must fail loudly
/// here instead.
fn thread_counts() -> Vec<usize> {
    let parsed: Vec<usize> = std::env::var("FLEXAGON_BENCH_THREADS")
        .map(|s| {
            s.split(',')
                .map(|t| match t.trim().parse::<usize>() {
                    Ok(n) if n >= 1 => n,
                    _ => panic!(
                        "FLEXAGON_BENCH_THREADS: '{t}' is not a positive thread count \
                         (expected a comma-separated list like '1,4')"
                    ),
                })
                .collect()
        })
        .unwrap_or_default();
    let mut counts = Vec::new();
    for t in parsed {
        if !counts.contains(&t) {
            counts.push(t);
        }
    }
    if counts.is_empty() {
        counts.push(rayon::current_num_threads());
    }
    counts
}

fn main() {
    let model = bench_model();
    let budget = std::time::Duration::from_millis(budget_ms());
    let path = results_path();
    if let Some(parent) = path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    let mut total_cycles = 0u64;
    for requested in thread_counts() {
        std::env::set_var("RAYON_NUM_THREADS", requested.to_string());
        let threads = rayon::current_num_threads();
        // Two configurations per thread count: the classic layer-parallel
        // fan-out, and the intra-layer-sharded engine with layers run
        // sequentially (all parallelism inside `execute`) — the path the
        // `bench-smoke` CI job guards alongside the layer-parallel one.
        let sharded = RunOptions {
            engine: EngineConfig::default().sharded(SHARD_GRAIN_NNZ, requested),
            layer_parallel: false,
            ..RunOptions::default()
        };
        let configs: [(&str, Option<&RunOptions>); 2] = [
            ("runner_wallclock/synthetic8x96", None),
            ("runner_wallclock/sharded8x96", Some(&sharded)),
        ];
        for (name, opts) in configs {
            let run = || match opts {
                None => runner::run_model(&model, DEFAULT_SEED, false),
                Some(o) => runner::run_model_opts(&model, DEFAULT_SEED, o, false),
            };
            // Warm-up: one full pass (operand materialization, allocator,
            // caches, workspace pools) at this parallelism.
            run();
            let start = Instant::now();
            let mut iters = 0u64;
            while start.elapsed() < budget || iters == 0 {
                let results = run();
                total_cycles = total_cycles.max(results.total_cycles.iter().sum());
                iters += 1;
            }
            let ns_per_iter = start.elapsed().as_nanos() as f64 / iters as f64;
            println!(
                "bench: {name:<56} {ns_per_iter:>14.1} ns/iter ({iters} iters, {threads} threads)"
            );
            match std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
            {
                Ok(mut file) => {
                    let _ = writeln!(
                        file,
                        "{{\"name\": \"{name}\", \"ns_per_iter\": {ns_per_iter:.1}, \
                         \"iterations\": {iters}, \"threads\": {threads}}}"
                    );
                }
                Err(e) => eprintln!(
                    "warning: cannot write bench results to {}: {e}",
                    path.display()
                ),
            }
        }
    }
    // Keep the optimizer honest about the simulation results.
    std::hint::black_box(total_cycles);
}
