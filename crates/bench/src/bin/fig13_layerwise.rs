//! Fig. 13: layer-wise speed-ups of the four accelerators on the nine
//! representative layers of Table 6, with the multiply/merge cycle split.
//!
//! Run with `cargo run --release -p flexagon-bench --bin fig13_layerwise`.

use flexagon_bench::render::{geomean, speedup, table};
use flexagon_bench::{run_layer, SystemId, DEFAULT_SEED};
use flexagon_dnn::table6;

fn main() {
    println!("Fig. 13 — layer-wise performance (speed-up vs SIGMA-like)\n");
    let mut rows = Vec::new();
    let mut per_system_speedups: Vec<Vec<f64>> = vec![Vec::new(); 4];
    let systems = [
        SystemId::SigmaLike,
        SystemId::SparchLike,
        SystemId::GammaLike,
        SystemId::Flexagon,
    ];
    for layer in table6::layers() {
        let r = run_layer(&layer.spec, DEFAULT_SEED);
        let base = r.inner_product.total_cycles as f64;
        let mut row = vec![layer.id.to_string()];
        for (i, system) in systems.into_iter().enumerate() {
            let rep = r.of(system);
            let s = base / rep.total_cycles as f64;
            per_system_speedups[i].push(s);
            row.push(format!(
                "{} (mult {}%, merg {}%)",
                speedup(s),
                (100 * rep.phases.mult_cycles() / rep.total_cycles.max(1)),
                (100 * rep.phases.merge_cycles() / rep.total_cycles.max(1)),
            ));
        }
        row.push(r.best_dataflow().to_string());
        rows.push(row);
    }
    let mut gm = vec!["GEOMEAN".to_string()];
    for s in &per_system_speedups {
        gm.push(speedup(geomean(s)));
    }
    gm.push(String::new());
    rows.push(gm);
    println!(
        "{}",
        table(
            &[
                "layer",
                "SIGMA-like",
                "Sparch-like",
                "GAMMA-like",
                "Flexagon",
                "best dataflow"
            ],
            &rows
        )
    );
}
