//! Compares a criterion-shim results file against the recorded baseline in
//! `BENCH_spgemm.json` and fails on real per-benchmark regressions.
//!
//! Usage: `bench_guard [--only PREFIX]... [--skip PREFIX]...
//! [results.json] [baseline.json]` (defaults: `target/bench_results.json`,
//! `BENCH_spgemm.json`). The results file is the record-per-line output the
//! vendored criterion shim appends to `FLEXAGON_BENCH_JSON`. `--only`
//! restricts the gated baseline set to benchmarks whose name starts with
//! `PREFIX` (repeatable; any match qualifies), `--skip` excludes a prefix —
//! so CI jobs each gate their own suite against the shared baseline file
//! without tripping the unmatched-entry failure for suites they do not run
//! (serve-smoke passes `--only serve_wallclock/`, bench-smoke passes
//! `--skip serve_wallclock/`); within the filtered set, unmatched gated
//! baselines still fail.
//!
//! Latency-percentile baselines: an entry carrying `post_p50_ns` /
//! `post_p99_ns` alongside `post_ns_per_iter` gates those fields against
//! the measurement's `p50_ns` / `p99_ns` (rows labeled `/p50`, `/p99`),
//! with the same machine-factor normalization. A percentile recorded in
//! the baseline but missing from the measurement is an unmatched failure —
//! dropping a percentile silently must not shrink the guarded set.
//!
//! CI machines are not the machine the baseline was recorded on, so raw
//! nanosecond comparisons would flag every benchmark on a slower runner. The
//! guard instead normalizes by the *median* measured/recorded ratio across
//! all matched benchmarks — the machine-speed factor — and fails only when a
//! single benchmark is more than `BENCH_GUARD_TOLERANCE` (default 1.5×)
//! slower than that factor predicts: a shape regression, not a slow machine.

use serde::{DeError, Deserialize, Value};
use std::process::ExitCode;

/// Benchmarks faster than this are dominated by timer jitter and batching
/// granularity at smoke budgets (the micro-intersection benches were
/// observed 1.5-1.7x off on unchanged code at starved budgets); they are
/// uploaded in the artifact but not gated on.
const MIN_GATED_NS: f64 = 5000.0;

/// Median measured/recorded ratio beyond which the run fails outright: the
/// median normalization exists to tolerate slower CI machines, but a factor
/// this large means either a systemic regression (slowing everything evades
/// per-bench gating) or a runner too far from the baseline machine class for
/// the comparison to mean anything.
const MAX_MACHINE_FACTOR: f64 = 4.0;

#[derive(Debug, Deserialize)]
struct Baseline {
    results: Vec<BaselineEntry>,
}

/// One record of the baseline file; extra fields (pre numbers, speedups)
/// are ignored by the shim's deserializer. `threads` is optional (absent
/// means a single-simulation kernel bench), so deserialization is manual —
/// the derive shim treats every listed field as required.
#[derive(Debug)]
struct BaselineEntry {
    benchmark: String,
    post_ns_per_iter: f64,
    threads: Option<u64>,
    post_p50_ns: Option<f64>,
    post_p99_ns: Option<f64>,
}

impl Deserialize for BaselineEntry {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let m = v
            .as_map()
            .ok_or_else(|| DeError::new("expected an object for BaselineEntry"))?;
        Ok(Self {
            benchmark: Deserialize::from_value(serde::map_get(m, "benchmark")?)?,
            post_ns_per_iter: Deserialize::from_value(serde::map_get(m, "post_ns_per_iter")?)?,
            threads: optional_u64(m, "threads")?,
            post_p50_ns: optional_f64(m, "post_p50_ns")?,
            post_p99_ns: optional_f64(m, "post_p99_ns")?,
        })
    }
}

/// One line of the criterion shim's results file (or a wall-clock
/// runner's, which may add `threads` and latency percentiles).
#[derive(Debug)]
struct Measured {
    name: String,
    ns_per_iter: f64,
    threads: Option<u64>,
    p50_ns: Option<f64>,
    p99_ns: Option<f64>,
}

impl Deserialize for Measured {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let m = v
            .as_map()
            .ok_or_else(|| DeError::new("expected an object for Measured"))?;
        Ok(Self {
            name: Deserialize::from_value(serde::map_get(m, "name")?)?,
            ns_per_iter: Deserialize::from_value(serde::map_get(m, "ns_per_iter")?)?,
            threads: optional_u64(m, "threads")?,
            p50_ns: optional_f64(m, "p50_ns")?,
            p99_ns: optional_f64(m, "p99_ns")?,
        })
    }
}

/// Reads an optional numeric field: absent and `null` both mean `None`.
fn optional_u64(m: &[(String, Value)], key: &str) -> Result<Option<u64>, DeError> {
    match serde::map_get(m, key) {
        Ok(Value::Null) | Err(_) => Ok(None),
        Ok(v) => Deserialize::from_value(v).map(Some),
    }
}

/// Reads an optional float field: absent and `null` both mean `None`.
fn optional_f64(m: &[(String, Value)], key: &str) -> Result<Option<f64>, DeError> {
    match serde::map_get(m, key) {
        Ok(Value::Null) | Err(_) => Ok(None),
        Ok(v) => Deserialize::from_value(v).map(Some),
    }
}

/// Display label for a baseline entry: the benchmark name, with the thread
/// count appended for wall-clock entries so per-thread baselines of the
/// same benchmark stay distinguishable in the output.
fn label(b: &BaselineEntry) -> String {
    match b.threads {
        Some(t) => format!("{} @{}t", b.benchmark, t),
        None => b.benchmark.clone(),
    }
}

fn main() -> ExitCode {
    let mut only: Vec<String> = Vec::new();
    let mut skip: Vec<String> = Vec::new();
    let mut positional: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--only" || arg == "--skip" {
            let Some(p) = args.next() else {
                eprintln!("bench_guard: {arg} needs a benchmark-name prefix");
                return ExitCode::FAILURE;
            };
            if arg == "--only" {
                only.push(p)
            } else {
                skip.push(p)
            }
        } else {
            positional.push(arg);
        }
    }
    let mut positional = positional.into_iter();
    let results_path = positional
        .next()
        .unwrap_or_else(|| "target/bench_results.json".into());
    let baseline_path = positional
        .next()
        .unwrap_or_else(|| "BENCH_spgemm.json".into());
    let tolerance: f64 = std::env::var("BENCH_GUARD_TOLERANCE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.5);

    let baseline_text = match std::fs::read_to_string(&baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("bench_guard: cannot read baseline {baseline_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let baseline: Baseline = match serde_json::from_str(&baseline_text) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("bench_guard: cannot parse baseline {baseline_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let results_text = match std::fs::read_to_string(&results_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("bench_guard: cannot read results {results_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let measured: Vec<Measured> = results_text
        .lines()
        .filter(|l| !l.trim().is_empty())
        .filter_map(|l| serde_json::from_str(l).ok())
        .collect();
    if measured.is_empty() {
        eprintln!("bench_guard: no measurements in {results_path}");
        return ExitCode::FAILURE;
    }

    // Match measurements to baseline records and compute speed ratios.
    let mut rows: Vec<(String, f64, f64, f64)> = Vec::new(); // name, base, now, ratio
    let mut unmatched: Vec<String> = Vec::new();
    for b in &baseline.results {
        if !only.is_empty() && !only.iter().any(|p| b.benchmark.starts_with(p.as_str())) {
            continue;
        }
        if skip.iter().any(|p| b.benchmark.starts_with(p.as_str())) {
            continue;
        }
        if b.post_ns_per_iter < MIN_GATED_NS {
            continue;
        }
        // The shim appends records, so a reused results file can hold
        // several measurements per benchmark: the last one is the latest.
        // Wall-clock baselines exist per thread count (the multi-core
        // runner records several), so a measurement matches only at equal
        // parallelism; a baseline measured only at *other* thread counts is
        // informational (a 4-thread baseline cannot gate a 2-core machine),
        // while one not measured at all fails below.
        let same_name = || measured.iter().rev().filter(|m| m.name == b.benchmark);
        match same_name().find(|m| m.threads.unwrap_or(1) == b.threads.unwrap_or(1)) {
            Some(m) => {
                rows.push((
                    label(b),
                    b.post_ns_per_iter,
                    m.ns_per_iter,
                    m.ns_per_iter / b.post_ns_per_iter,
                ));
                // Latency-percentile baselines gate alongside the mean: one
                // row per recorded percentile, matched against the same
                // measurement. A baseline percentile the runner stopped
                // reporting is an unmatched failure, same as a dropped
                // benchmark.
                let percentiles = [
                    ("p50", b.post_p50_ns, m.p50_ns),
                    ("p99", b.post_p99_ns, m.p99_ns),
                ];
                for (suffix, base, now) in percentiles {
                    match (base, now) {
                        (Some(base), Some(now)) => {
                            rows.push((format!("{}/{suffix}", label(b)), base, now, now / base));
                        }
                        (Some(_), None) => unmatched.push(format!("{}/{suffix}", label(b))),
                        (None, _) => {}
                    }
                }
            }
            None if same_name().next().is_some() => {
                println!(
                    "  {:<44} skipped: baseline at {} thread(s), measured only at {:?}",
                    label(b),
                    b.threads.unwrap_or(1),
                    same_name()
                        .map(|m| m.threads.unwrap_or(1))
                        .collect::<Vec<_>>(),
                );
            }
            // A gated baseline entry with no measurement means the benchmark
            // was renamed or dropped without updating the baseline — that
            // must not silently shrink the guarded set.
            None => unmatched.push(label(b)),
        }
    }
    if !unmatched.is_empty() {
        for name in &unmatched {
            eprintln!("bench_guard: baseline benchmark '{name}' was not measured");
        }
        eprintln!(
            "bench_guard: {} gated baseline entr{} missing from the results — \
             renamed or dropped benchmarks must update {baseline_path}",
            unmatched.len(),
            if unmatched.len() == 1 { "y" } else { "ies" },
        );
        return ExitCode::FAILURE;
    }
    if rows.is_empty() {
        eprintln!("bench_guard: no benchmark matched the baseline — name drift?");
        return ExitCode::FAILURE;
    }
    let mut ratios: Vec<f64> = rows.iter().map(|r| r.3).collect();
    ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite ratios"));
    let machine_factor = ratios[ratios.len() / 2];
    if machine_factor > MAX_MACHINE_FACTOR {
        eprintln!(
            "bench_guard: median ratio {machine_factor:.2}x exceeds {MAX_MACHINE_FACTOR}x — \
             systemic regression, or a machine too slow to compare against the baseline"
        );
        return ExitCode::FAILURE;
    }
    let limit = machine_factor * tolerance;

    println!(
        "bench_guard: {} benchmarks, machine factor {machine_factor:.2}x, \
         per-bench limit {limit:.2}x (tolerance {tolerance}x)",
        rows.len()
    );
    let mut failed = false;
    for (name, base, now, ratio) in &rows {
        let verdict = if *ratio > limit {
            failed = true;
            "REGRESSION"
        } else {
            "ok"
        };
        println!("  {name:<44} {base:>14.1} -> {now:>14.1} ns/iter  {ratio:>5.2}x  {verdict}");
    }
    if failed {
        eprintln!("bench_guard: regression(s) above {tolerance}x the machine-normalized baseline");
        ExitCode::FAILURE
    } else {
        println!("bench_guard: baseline held");
        ExitCode::SUCCESS
    }
}
