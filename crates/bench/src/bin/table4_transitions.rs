//! Table 4: inter-layer dataflow transitions that avoid explicit format
//! conversions.
//!
//! Run with `cargo run --release -p flexagon-bench --bin table4_transitions`.

use flexagon_bench::render::table;
use flexagon_core::{transitions, Dataflow};

fn main() {
    println!("Table 4 — transitions without Explicit format Conversion (EC)\n");
    let names: Vec<&str> = Dataflow::ALL.iter().map(|d| d.informal_name()).collect();
    let matrix = transitions::matrix();
    let mut rows = Vec::new();
    for (i, from) in names.iter().enumerate() {
        let mut row = vec![format!("from {from}")];
        for &free in &matrix[i] {
            row.push(if free { "ok".into() } else { "EC".into() });
        }
        rows.push(row);
    }
    let mut header = vec!["producer \\ consumer"];
    header.extend(names.iter().copied());
    println!("{}", table(&header, &rows));

    println!("Fig. 8's example chain (free of conversions):");
    let chain = [
        Dataflow::InnerProductN,
        Dataflow::OuterProductM,
        Dataflow::GustavsonM,
    ];
    for pair in chain.windows(2) {
        println!(
            "  {} -> {}: {}",
            pair[0],
            pair[1],
            if transitions::is_free(pair[0], pair[1]) {
                "free"
            } else {
                "EC"
            }
        );
    }
}
