//! Fits the heuristic mapper's cost-model corrections from measured
//! execution reports (ROADMAP item (b) for the mapper: replace hand-tuned
//! closed-form guesses with coefficients derived from measurement).
//!
//! For every case in the fitting set (the DNN suite plus the generator
//! scenario sweep), the three M-stationary dataflows are simulated once on
//! the Table 5 Flexagon. The calibration model is per-class linear
//! (`flexagon_core::ClassCalibration`): a scale on the raw closed-form
//! estimate plus fitted per-`nnz(A)` / per-row / per-`nnz(B)` overhead
//! terms. Fitting is decision-focused:
//!
//! 1. **Diagnostic regression** — each class's measured cycles are
//!    regressed against the raw estimate in log-log space and reported
//!    (scale, exponent, R²). This shows how predictive the raw model is,
//!    but is not the fit: per-class least squares happily trades ranking
//!    quality near decision boundaries for absolute accuracy, and ranking
//!    is the mapper's whole job.
//! 2. **Grid seed** — a coarse sweep over the historically decisive
//!    coefficients (Gustavson's per-element/per-row overheads, the
//!    Outer-Product scale, Inner Product's per-element overhead) finds a
//!    starting basin; the ranking objective is full of local optima that
//!    single-coordinate moves cannot escape from identity.
//! 3. **Coordinate refinement** — a deterministic coordinate search over
//!    all twelve coefficients maximizes top-1 agreement with geomean
//!    regret as the tie-break.
//!
//! The result is a [`flexagon_core::MapperCalibration`] — printed as JSON
//! and as the Rust literals checked in on `MapperCalibration::calibrated`
//! — together with the fitting-set agreement/regret it achieves (audited
//! properly, over stride-disjoint smoke subsets and the scenario families,
//! by the `mapper_accuracy` binary and its CI job).
//!
//! Usage: `mapper_calibrate [--smoke] [--data <out.jsonl>] [--refit <in.jsonl>]`
//!
//! `--data` dumps the per-case measurements (label, raw estimates, measured
//! cycles) as JSON lines; `--refit` re-runs the fit and the evaluation from
//! such a dump without re-simulating anything.

use flexagon_bench::mapper::{dnn_cases, evaluate_all, scenario_cases, CaseOutcome};
use flexagon_bench::render::table;
use flexagon_bench::DEFAULT_SEED;
use flexagon_core::{mapper, AcceleratorConfig, ClassCalibration, Dataflow, MapperCalibration};
use flexagon_dnn::AgreementStats;
use std::io::Write;

/// One least-squares fit of `ln(measured) = b + a·ln(raw)`.
struct Fit {
    scale: f64,
    exponent: f64,
    r_squared: f64,
}

fn fit_loglog(points: &[(f64, f64)]) -> Fit {
    assert!(points.len() >= 2, "need at least two points to fit");
    let n = points.len() as f64;
    let (mut sx, mut sy) = (0.0, 0.0);
    for &(x, y) in points {
        sx += x.ln();
        sy += y.ln();
    }
    let (mx, my) = (sx / n, sy / n);
    let (mut sxx, mut sxy, mut syy) = (0.0, 0.0, 0.0);
    for &(x, y) in points {
        let (dx, dy) = (x.ln() - mx, y.ln() - my);
        sxx += dx * dx;
        sxy += dx * dy;
        syy += dy * dy;
    }
    let exponent = if sxx > 0.0 { sxy / sxx } else { 1.0 };
    let scale = (my - exponent * mx).exp();
    let r_squared = if sxx > 0.0 && syy > 0.0 {
        (sxy * sxy) / (sxx * syy)
    } else {
        1.0
    };
    Fit {
        scale,
        exponent,
        r_squared,
    }
}

/// The class the fitted calibration picks for one case, from its stored
/// raw estimates and structural features (`[m, k, n, nnz_a, nnz_b,
/// products, effectual_k]`). Goes through the production
/// `CostFeatures::calibrated` + `CostEstimates::best` path, so the fitter
/// optimizes exactly the model `mapper::heuristic` executes — including
/// its tie-break order.
fn pick(cal: &MapperCalibration, o: &CaseOutcome) -> usize {
    let features = mapper::CostFeatures {
        raw: mapper::CostEstimates {
            inner_product: o.raw_estimates[0],
            outer_product: o.raw_estimates[1],
            gustavson: o.raw_estimates[2],
        },
        nnz_a: o.features[3] as u64,
        rows: o.features[0] as u32,
        nnz_b: o.features[4] as u64,
    };
    let best = features.calibrated(cal).best();
    Dataflow::M_STATIONARY
        .iter()
        .position(|&d| d == best)
        .expect("best() returns an M-stationary dataflow")
}

/// Scores a calibration against the stored measurements (no simulation).
fn score(cal: &MapperCalibration, outcomes: &[CaseOutcome]) -> AgreementStats {
    let mut stats = AgreementStats::new();
    for o in outcomes {
        let picked = o.measured_cycles[pick(cal, o)];
        let best = *o.measured_cycles.iter().min().expect("three cycles");
        stats.record(&o.label, picked == best, picked as f64 / best as f64);
    }
    stats
}

/// Ranking objective, larger is better: agreements first, then lower total
/// log-regret. The regret component is quantized so float noise cannot
/// reorder candidates whose agreement counts differ.
fn objective(cal: &MapperCalibration, outcomes: &[CaseOutcome]) -> (usize, i64) {
    let s = score(cal, outcomes);
    let log_regret_total = (s.geomean_regret().ln() * s.cases as f64 * 1e9) as i64;
    (s.agreements, -log_regret_total)
}

/// Coarse grid over the historically decisive coefficients, seeding the
/// coordinate refinement (the ranking objective has local optima that
/// single-coordinate moves cannot escape from identity).
fn grid_seed(outcomes: &[CaseOutcome]) -> MapperCalibration {
    let mut best = MapperCalibration::IDENTITY;
    let mut best_obj = objective(&best, outcomes);
    for &gust_nnz_a in &[0.0, 0.05, 0.1, 0.15, 0.2, 0.3, 0.5] {
        for &gust_row in &[0.0, 1.0, 2.0, 4.0, 8.0] {
            for &op_scale in &[0.8, 1.0, 1.2, 1.5, 2.0] {
                for &ip_nnz_a in &[0.0, 0.05, 0.1, 0.2] {
                    let mut cand = MapperCalibration::IDENTITY;
                    cand.gustavson.per_nnz_a = gust_nnz_a;
                    cand.gustavson.per_row = gust_row;
                    cand.outer_product.scale = op_scale;
                    cand.inner_product.per_nnz_a = ip_nnz_a;
                    let obj = objective(&cand, outcomes);
                    if obj > best_obj {
                        best = cand;
                        best_obj = obj;
                    }
                }
            }
        }
    }
    best
}

/// Deterministic coordinate search over the twelve calibration
/// coefficients, maximizing [`objective`]. Scales move multiplicatively,
/// overhead terms both additively and multiplicatively; each pass sweeps
/// every parameter with a fixed perturbation menu and keeps strict
/// improvements, until a pass changes nothing.
fn refine(start: MapperCalibration, outcomes: &[CaseOutcome]) -> MapperCalibration {
    const SCALE_STEPS: [f64; 10] = [0.25, 0.5, 0.8, 0.9, 0.95, 1.05, 1.1, 1.25, 2.0, 4.0];
    const OVERHEAD_STEPS: [f64; 11] = [0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0, 2.0, 4.0, 8.0];
    let mut best = start;
    let mut best_obj = objective(&best, outcomes);
    for _pass in 0..40 {
        let mut improved = false;
        for param in 0..12 {
            let mut candidates: Vec<f64> = Vec::new();
            let cur = get_param(&best, param);
            if param % 4 == 0 {
                candidates.extend(SCALE_STEPS.iter().map(|f| cur * f));
            } else {
                for d in OVERHEAD_STEPS {
                    candidates.push(cur + d);
                    candidates.push((cur - d).max(0.0));
                }
                if cur > 0.0 {
                    candidates.extend(SCALE_STEPS.iter().map(|f| cur * f));
                }
            }
            for v in candidates {
                let cand = set_param(best, param, v);
                let obj = objective(&cand, outcomes);
                if obj > best_obj {
                    best = cand;
                    best_obj = obj;
                    improved = true;
                }
            }
        }
        if !improved {
            break;
        }
    }
    best
}

/// Parameter layout: four per class (`scale`, `per_nnz_a`, `per_row`,
/// `per_nnz_b`), classes in IP, OP, Gust order.
fn class_of(cal: &mut MapperCalibration, param: usize) -> &mut ClassCalibration {
    match param / 4 {
        0 => &mut cal.inner_product,
        1 => &mut cal.outer_product,
        _ => &mut cal.gustavson,
    }
}

fn get_param(cal: &MapperCalibration, param: usize) -> f64 {
    let mut c = *cal;
    let class = class_of(&mut c, param);
    match param % 4 {
        0 => class.scale,
        1 => class.per_nnz_a,
        2 => class.per_row,
        _ => class.per_nnz_b,
    }
}

fn set_param(mut cal: MapperCalibration, param: usize, v: f64) -> MapperCalibration {
    let class = class_of(&mut cal, param);
    match param % 4 {
        0 => class.scale = v.max(1e-12),
        1 => class.per_nnz_a = v.max(0.0),
        2 => class.per_row = v.max(0.0),
        _ => class.per_nnz_b = v.max(0.0),
    }
    cal
}

fn dump(outcomes: &[CaseOutcome], path: &str) {
    let mut file = std::fs::File::create(path).unwrap_or_else(|e| panic!("create {path}: {e}"));
    for o in outcomes {
        writeln!(
            file,
            "{{\"label\": {}, \"group\": {}, \"raw\": [{}, {}, {}], \
             \"measured\": [{}, {}, {}], \"features\": {}}}",
            serde_json::to_string(&o.label).expect("label serializes"),
            serde_json::to_string(&o.group).expect("group serializes"),
            o.raw_estimates[0],
            o.raw_estimates[1],
            o.raw_estimates[2],
            o.measured_cycles[0],
            o.measured_cycles[1],
            o.measured_cycles[2],
            serde_json::to_string(&o.features).expect("features serialize"),
        )
        .unwrap_or_else(|e| panic!("write {path}: {e}"));
    }
    eprintln!("wrote {} fitting records to {path}", outcomes.len());
}

/// One dumped fitting record (the shim's `from_str` needs a concrete
/// `Deserialize` target, so the record is parsed manually like
/// `bench_guard`'s baseline entries).
struct FitRecord {
    label: String,
    group: String,
    raw: [f64; 3],
    measured: [u64; 3],
    features: [f64; 7],
}

impl serde::Deserialize for FitRecord {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let m = v
            .as_map()
            .ok_or_else(|| serde::DeError::new("expected an object for FitRecord"))?;
        Ok(Self {
            label: serde::Deserialize::from_value(serde::map_get(m, "label")?)?,
            group: serde::Deserialize::from_value(serde::map_get(m, "group")?)?,
            raw: serde::Deserialize::from_value(serde::map_get(m, "raw")?)?,
            measured: serde::Deserialize::from_value(serde::map_get(m, "measured")?)?,
            features: serde::Deserialize::from_value(serde::map_get(m, "features")?)?,
        })
    }
}

fn reload(path: &str) -> Vec<CaseOutcome> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .map(|line| {
            let r: FitRecord = serde_json::from_str(line).expect("valid fitting record");
            let best = Dataflow::M_STATIONARY[r
                .measured
                .iter()
                .enumerate()
                .min_by_key(|&(_, &c)| c)
                .expect("three cycles")
                .0];
            CaseOutcome {
                group: r.group,
                label: r.label,
                // Predicted is re-derived from the calibration under test;
                // the stored value is irrelevant for refitting.
                predicted: best,
                oracle: best,
                measured_cycles: r.measured,
                raw_estimates: r.raw,
                features: r.features,
            }
        })
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let flag_value = |flag: &str| {
        args.iter().position(|a| a == flag).map(|i| {
            args.get(i + 1)
                .unwrap_or_else(|| panic!("{flag} needs a path"))
                .clone()
        })
    };

    let outcomes = match flag_value("--refit") {
        Some(path) => reload(&path),
        None => {
            let mut cases = dnn_cases(DEFAULT_SEED, smoke);
            cases.extend(scenario_cases(DEFAULT_SEED));
            eprintln!(
                "simulating {} cases x 3 dataflows (table5 config){}...",
                cases.len(),
                if smoke { " [smoke]" } else { "" }
            );
            let cfg = AcceleratorConfig::table5();
            evaluate_all(&cfg, &cases)
        }
    };
    if let Some(path) = flag_value("--data") {
        dump(&outcomes, &path);
    }

    // Stage 1 (diagnostic only): one log-log fit per class over every case
    // with a positive raw estimate (zero estimates — empty operands —
    // carry no signal). R² shows how predictive the raw model is.
    let mut fits = Vec::new();
    for class in 0..3 {
        let points: Vec<(f64, f64)> = outcomes
            .iter()
            .filter(|o| o.raw_estimates[class] > 0.0 && o.measured_cycles[class] > 0)
            .map(|o| (o.raw_estimates[class], o.measured_cycles[class] as f64))
            .collect();
        fits.push(fit_loglog(&points));
    }
    println!("Diagnostic log-log fit of measured cycles vs raw estimate\n");
    let rows: Vec<Vec<String>> = ["Inner Product", "Outer Product", "Gustavson"]
        .iter()
        .zip(&fits)
        .map(|(name, f)| {
            vec![
                name.to_string(),
                format!("{:.4}", f.scale),
                format!("{:.4}", f.exponent),
                format!("{:.4}", f.r_squared),
            ]
        })
        .collect();
    println!("{}", table(&["class", "scale", "exponent", "R^2"], &rows));

    // Stages 2+3: grid seed, then coordinate refinement on the ranking
    // objective.
    let seeded = grid_seed(&outcomes);
    let refined = refine(seeded, &outcomes);

    for (name, cal) in [
        ("identity (uncalibrated)", MapperCalibration::IDENTITY),
        ("checked-in", MapperCalibration::calibrated()),
        ("grid seed (stage 2)", seeded),
        ("refined (stage 3)", refined),
    ] {
        let s = score(&cal, &outcomes);
        println!(
            "{name:<24} top-1 {:>6.2}%   geomean regret {:.4}x   max regret {:.3}x ({})",
            100.0 * s.top1_fraction(),
            s.geomean_regret(),
            s.max_regret(),
            s.worst_case().unwrap_or("-"),
        );
    }

    let fmt_class = |name: &str, c: &ClassCalibration| {
        format!(
            "            {name}: ClassCalibration {{\n\
             \x20               scale: {:?},\n\
             \x20               per_nnz_a: {:?},\n\
             \x20               per_row: {:?},\n\
             \x20               per_nnz_b: {:?},\n\
             \x20           }},",
            c.scale, c.per_nnz_a, c.per_row, c.per_nnz_b
        )
    };
    println!("\nChecked-in literals (MapperCalibration::calibrated, crates/core/src/mapper.rs):");
    println!("{}", fmt_class("inner_product", &refined.inner_product));
    println!("{}", fmt_class("outer_product", &refined.outer_product));
    println!("{}", fmt_class("gustavson", &refined.gustavson));
    println!(
        "\nJSON: {}",
        serde_json::to_string(&refined).expect("calibration serializes")
    );
}
