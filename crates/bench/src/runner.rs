//! Layer- and model-level experiment runners.

use flexagon_core::{
    mapper, Accelerator, AcceleratorConfig, CpuMkl, Dataflow, EngineConfig, ExecutionReport,
    ExecutionRequest, GammaLike, MappingStrategy, SigmaLike, SparchLike, Stationarity,
};
use flexagon_dnn::{DnnModel, LayerSpec};
use rayon::prelude::*;
use serde::Serialize;

/// Seed used by every harness binary, so all tables and figures in
/// EXPERIMENTS.md come from the same materialized workload.
pub const DEFAULT_SEED: u64 = 0xF1E_CA60;

/// The five systems of Fig. 12.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum SystemId {
    /// Intel-MKL-like CPU baseline.
    CpuMkl,
    /// SIGMA-like (Inner Product) accelerator.
    SigmaLike,
    /// SpArch-like (Outer Product) accelerator.
    SparchLike,
    /// GAMMA-like (Gustavson) accelerator.
    GammaLike,
    /// Flexagon with per-layer best dataflow.
    Flexagon,
}

impl SystemId {
    /// All five in the paper's plotting order.
    pub const ALL: [SystemId; 5] = [
        SystemId::CpuMkl,
        SystemId::SigmaLike,
        SystemId::SparchLike,
        SystemId::GammaLike,
        SystemId::Flexagon,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Self::CpuMkl => "CPU MKL",
            Self::SigmaLike => "SIGMA-like",
            Self::SparchLike => "Sparch-like",
            Self::GammaLike => "GAMMA-like",
            Self::Flexagon => "Flexagon",
        }
    }
}

/// Results of one layer across the three fixed-dataflow accelerators (the
/// CPU estimate rides along). Flexagon's per-layer result is the dataflow
/// selected by the configured [`MappingStrategy`] — the per-layer minimum
/// under the oracle (the paper's configuration), the calibrated cost
/// model's feature-only pick under the heuristic.
#[derive(Debug, Clone, Serialize)]
pub struct LayerResults {
    /// The layer that was run.
    pub spec: LayerSpec,
    /// SIGMA-like (Inner-Product(M)) report.
    pub inner_product: ExecutionReport,
    /// SpArch-like (Outer-Product(M)) report.
    pub outer_product: ExecutionReport,
    /// GAMMA-like (Gustavson(M)) report.
    pub gustavson: ExecutionReport,
    /// CPU baseline report.
    pub cpu: ExecutionReport,
    /// The dataflow Flexagon runs this layer with under the configured
    /// mapping strategy (equals [`LayerResults::best_dataflow`] for
    /// [`MappingStrategy::Oracle`]).
    pub flexagon_dataflow: Dataflow,
}

impl LayerResults {
    /// The dataflow with the fewest cycles — the per-layer winner that
    /// Fig. 1 plots and that Flexagon's oracle configuration selects.
    pub fn best_dataflow(&self) -> Dataflow {
        let mut best = (self.inner_product.total_cycles, Dataflow::InnerProductM);
        if self.outer_product.total_cycles < best.0 {
            best = (self.outer_product.total_cycles, Dataflow::OuterProductM);
        }
        if self.gustavson.total_cycles < best.0 {
            best = (self.gustavson.total_cycles, Dataflow::GustavsonM);
        }
        best.1
    }

    /// The report of the dataflow Flexagon ran under the configured
    /// strategy (= the winning dataflow's report under the oracle).
    pub fn flexagon(&self) -> &ExecutionReport {
        match self.flexagon_dataflow {
            Dataflow::InnerProductM => &self.inner_product,
            Dataflow::OuterProductM => &self.outer_product,
            _ => &self.gustavson,
        }
    }

    /// Report for one of the five systems.
    pub fn of(&self, system: SystemId) -> &ExecutionReport {
        match system {
            SystemId::CpuMkl => &self.cpu,
            SystemId::SigmaLike => &self.inner_product,
            SystemId::SparchLike => &self.outer_product,
            SystemId::GammaLike => &self.gustavson,
            SystemId::Flexagon => self.flexagon(),
        }
    }
}

/// Execution options for the layer/model harnesses: the mapping strategy
/// plus where the parallelism lives.
///
/// The default reproduces the classic harness bit for bit: oracle mapping,
/// the default (unsharded) engine, and layer-level rayon fan-out.
#[derive(Debug, Clone, Copy)]
pub struct RunOptions {
    /// How Flexagon selects its per-layer dataflow.
    pub strategy: MappingStrategy,
    /// Engine template applied to every accelerator (notably the
    /// intra-layer shard grain and worker knobs).
    pub engine: EngineConfig,
    /// Fan layers and systems across the rayon pool (the classic runner).
    /// When disabled, layers and systems run sequentially and the
    /// intra-layer shard workers own the machine — the configuration the
    /// sharded wall-clock benchmark measures.
    pub layer_parallel: bool,
}

impl Default for RunOptions {
    fn default() -> Self {
        Self {
            strategy: MappingStrategy::Oracle,
            engine: EngineConfig::default(),
            layer_parallel: true,
        }
    }
}

/// Concurrent simulations per layer under the layer-parallel runner: the
/// three fixed-dataflow accelerators plus the CPU baseline fan out through
/// nested `rayon::join`s in [`run_layer_opts`].
pub const LAYER_SIM_FANOUT: usize = 4;

/// The intra-layer shard-worker budget that keeps nested parallelism from
/// oversubscribing: with `parallel_sims` simulations already fanned across
/// `total_threads` (layers × the per-layer system fan-out), each
/// simulation may use at most `total_threads / parallel_sims` shard
/// workers (at least one).
pub fn intra_layer_worker_budget(total_threads: usize, parallel_sims: usize) -> usize {
    (total_threads / parallel_sims.clamp(1, total_threads.max(1))).max(1)
}

/// Runs one layer on the four accelerators plus the CPU baseline, with
/// Flexagon selecting per the oracle (the paper's configuration);
/// equivalent to [`run_layer_with`] under [`MappingStrategy::Oracle`].
///
/// # Panics
///
/// Panics if any simulation fails — harness inputs are always well-formed.
pub fn run_layer(spec: &LayerSpec, seed: u64) -> LayerResults {
    run_layer_with(spec, seed, MappingStrategy::Oracle)
}

/// Runs one layer on the four accelerators plus the CPU baseline.
///
/// The three fixed-dataflow baselines run their M-stationary variant, as in
/// the paper's per-layer methodology. Flexagon's number is the strategy's
/// selection among those three measured dataflows: the per-layer best
/// under [`MappingStrategy::Oracle`], the calibrated cost model's
/// feature-only pick under [`MappingStrategy::Heuristic`] (computed from
/// the operands before any result is known), or the pinned class under
/// [`MappingStrategy::Fixed`].
///
/// # Panics
///
/// Panics if any simulation fails — harness inputs are always well-formed —
/// or if a `Fixed` strategy names an N-stationary dataflow (this harness
/// measures the M-stationary variants).
pub fn run_layer_with(spec: &LayerSpec, seed: u64, strategy: MappingStrategy) -> LayerResults {
    run_layer_opts(
        spec,
        seed,
        &RunOptions {
            strategy,
            ..RunOptions::default()
        },
    )
}

/// Runs one layer on the four accelerators plus the CPU baseline under the
/// given [`RunOptions`] — see [`run_layer_with`] for the measurement
/// semantics.
///
/// # Panics
///
/// Panics if any simulation fails or a `Fixed` strategy names an
/// N-stationary dataflow.
pub fn run_layer_opts(spec: &LayerSpec, seed: u64, opts: &RunOptions) -> LayerResults {
    let mats = spec.materialize(seed);
    let base_cfg = {
        let mut cfg = AcceleratorConfig::table5();
        cfg.engine = opts.engine;
        cfg
    };
    let sim_ip = || {
        SigmaLike::new(base_cfg)
            .execute(ExecutionRequest::new(&mats.a, &mats.b).dataflow(Dataflow::InnerProductM))
            .expect("inner product run")
            .output
    };
    let sim_op = || {
        SparchLike::new(base_cfg)
            .execute(ExecutionRequest::new(&mats.a, &mats.b).dataflow(Dataflow::OuterProductM))
            .expect("outer product run")
            .output
    };
    let sim_gu = || {
        GammaLike::new(base_cfg)
            .execute(ExecutionRequest::new(&mats.a, &mats.b).dataflow(Dataflow::GustavsonM))
            .expect("gustavson run")
            .output
    };
    let sim_cpu = || {
        CpuMkl::with_defaults()
            .run(&mats.a, &mats.b)
            .expect("cpu run")
    };
    // The four systems are independent simulations of the same operands.
    // Under layer-level parallelism they fan out across cores; each closure
    // is a pure function of the materialized matrices, so the parallel
    // schedule cannot change any report bit. When the intra-layer shard
    // workers own the machine instead, the systems run sequentially so the
    // two levels of parallelism never multiply.
    let (ip, op, gu, cpu_out) = if opts.layer_parallel {
        let ((ip, op), (gu, cpu_out)) = rayon::join(
            || rayon::join(sim_ip, sim_op),
            || rayon::join(sim_gu, sim_cpu),
        );
        (ip, op, gu, cpu_out)
    } else {
        (sim_ip(), sim_op(), sim_gu(), sim_cpu())
    };
    let mut results = LayerResults {
        spec: spec.clone(),
        inner_product: ip.report,
        outer_product: op.report,
        gustavson: gu.report,
        cpu: cpu_out.report,
        // Placeholder until the strategy resolves below (Oracle needs the
        // three reports it is selecting over).
        flexagon_dataflow: Dataflow::InnerProductM,
    };
    results.flexagon_dataflow = match opts.strategy {
        MappingStrategy::Oracle => results.best_dataflow(),
        MappingStrategy::Heuristic => mapper::heuristic(&base_cfg, &mats.a, &mats.b),
        MappingStrategy::Fixed(df) => {
            assert_eq!(
                df.stationarity(),
                Stationarity::M,
                "the per-layer harness measures M-stationary dataflows, got {df}"
            );
            df
        }
    };
    results
}

/// Aggregated results of a whole model: total cycles per system plus the
/// per-layer winner list.
#[derive(Debug, Clone, Serialize)]
pub struct ModelResults {
    /// Model short code.
    pub short: &'static str,
    /// Model name.
    pub name: &'static str,
    /// Total cycles per system, in [`SystemId::ALL`] order.
    pub total_cycles: [u64; 5],
    /// Dataflow Flexagon ran per layer under the configured strategy —
    /// the per-layer winner (Fig. 1's series) under the oracle.
    pub winners: Vec<Dataflow>,
}

impl ModelResults {
    /// Total cycles for one system.
    pub fn cycles(&self, system: SystemId) -> u64 {
        let idx = SystemId::ALL
            .iter()
            .position(|&s| s == system)
            .expect("system in ALL");
        self.total_cycles[idx]
    }

    /// Speed-up of `system` over the CPU baseline (Fig. 12's y-axis).
    pub fn speedup_vs_cpu(&self, system: SystemId) -> f64 {
        self.cycles(SystemId::CpuMkl) as f64 / self.cycles(system) as f64
    }
}

/// Runs every layer of a model with the oracle strategy and aggregates
/// per-system totals; equivalent to [`run_model_with`] under
/// [`MappingStrategy::Oracle`].
///
/// `verbose` prints one progress line per layer to stderr.
pub fn run_model(model: &DnnModel, seed: u64, verbose: bool) -> ModelResults {
    run_model_with(model, seed, MappingStrategy::Oracle, verbose)
}

/// Runs every layer of a model under `strategy` and aggregates per-system
/// totals.
///
/// `verbose` prints one progress line per layer to stderr.
pub fn run_model_with(
    model: &DnnModel,
    seed: u64,
    strategy: MappingStrategy,
    verbose: bool,
) -> ModelResults {
    run_model_opts(
        model,
        seed,
        &RunOptions {
            strategy,
            ..RunOptions::default()
        },
        verbose,
    )
}

/// Runs every layer of a model under the given [`RunOptions`] and
/// aggregates per-system totals.
///
/// Nested-parallelism budget: when layers fan out across the rayon pool,
/// the intra-layer shard workers are clamped to
/// [`intra_layer_worker_budget`] so the two levels never multiply into
/// oversubscription. When `layer_parallel` is off, layers run sequentially
/// and the configured shard workers own the machine.
///
/// `verbose` prints one progress line per layer to stderr.
pub fn run_model_opts(
    model: &DnnModel,
    seed: u64,
    opts: &RunOptions,
    verbose: bool,
) -> ModelResults {
    let mut opts = *opts;
    if opts.layer_parallel {
        let threads = rayon::current_num_threads();
        // Each concurrently-running layer itself fans out LAYER_SIM_FANOUT
        // simulations, so the divisor is the full simulation concurrency —
        // not just the layer count.
        let parallel_sims = model.layers.len().max(1).saturating_mul(LAYER_SIM_FANOUT);
        opts.engine.shard_workers = opts
            .engine
            .shard_workers
            .min(intra_layer_worker_budget(threads, parallel_sims));
    }
    // Layers are independent given the fixed seed (each materializes its own
    // deterministic operands from `spec` + `seed`), so the whole model fans
    // out across cores; results come back in layer order, and totals are
    // accumulated sequentially so the aggregation order — and therefore
    // every output byte — matches the sequential runner's. (Sharded engines
    // are themselves schedule-independent, so the clamp above affects wall
    // clock only, never a report bit.)
    let layers: Vec<LayerResults> = if opts.layer_parallel {
        model
            .layers
            .par_iter()
            .map(|spec| run_layer_opts(spec, seed, &opts))
            .collect()
    } else {
        model
            .layers
            .iter()
            .map(|spec| run_layer_opts(spec, seed, &opts))
            .collect()
    };
    let mut totals = [0u64; 5];
    let mut winners = Vec::with_capacity(model.layers.len());
    for (spec, layer) in model.layers.iter().zip(&layers) {
        for (i, system) in SystemId::ALL.into_iter().enumerate() {
            totals[i] += layer.of(system).total_cycles;
        }
        winners.push(layer.flexagon_dataflow);
        if verbose {
            eprintln!(
                "  {}/{}: {} -> {}",
                model.short, spec.index, spec.name, layer.flexagon_dataflow
            );
        }
    }
    ModelResults {
        short: model.short,
        name: model.name,
        total_cycles: totals,
        winners,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_layer_produces_all_systems() {
        let spec = LayerSpec::new(0, "t", 32, 32, 32, 60.0, 60.0);
        let r = run_layer(&spec, 1);
        for system in SystemId::ALL {
            assert!(r.of(system).total_cycles > 0, "{}", system.name());
        }
        // Flexagon is never slower than any fixed accelerator.
        let f = r.flexagon().total_cycles;
        assert!(f <= r.inner_product.total_cycles);
        assert!(f <= r.outer_product.total_cycles);
        assert!(f <= r.gustavson.total_cycles);
    }

    #[test]
    fn heuristic_strategy_selects_without_peeking() {
        let spec = LayerSpec::new(0, "t", 32, 32, 32, 60.0, 60.0);
        let oracle = run_layer_with(&spec, 1, MappingStrategy::Oracle);
        let heuristic = run_layer_with(&spec, 1, MappingStrategy::Heuristic);
        // Same simulations either way; only the Flexagon selection differs.
        assert_eq!(
            oracle.inner_product.total_cycles,
            heuristic.inner_product.total_cycles
        );
        assert!(Dataflow::M_STATIONARY.contains(&heuristic.flexagon_dataflow));
        // The heuristic's report is one of the three measured ones.
        let f = heuristic.flexagon().total_cycles;
        assert!(
            f == heuristic.inner_product.total_cycles
                || f == heuristic.outer_product.total_cycles
                || f == heuristic.gustavson.total_cycles
        );
    }

    #[test]
    fn fixed_strategy_pins_the_class() {
        let spec = LayerSpec::new(0, "t", 24, 24, 24, 50.0, 50.0);
        for df in Dataflow::M_STATIONARY {
            let r = run_layer_with(&spec, 1, MappingStrategy::Fixed(df));
            assert_eq!(r.flexagon_dataflow, df);
            let expected = match df {
                Dataflow::InnerProductM => r.inner_product.total_cycles,
                Dataflow::OuterProductM => r.outer_product.total_cycles,
                _ => r.gustavson.total_cycles,
            };
            assert_eq!(r.flexagon().total_cycles, expected);
        }
    }

    #[test]
    #[should_panic(expected = "M-stationary")]
    fn fixed_strategy_rejects_n_stationary() {
        let spec = LayerSpec::new(0, "t", 8, 8, 8, 50.0, 50.0);
        run_layer_with(&spec, 1, MappingStrategy::Fixed(Dataflow::GustavsonN));
    }

    #[test]
    fn worker_budget_divides_threads() {
        assert_eq!(intra_layer_worker_budget(8, 4), 2);
        assert_eq!(intra_layer_worker_budget(4, 8), 1);
        assert_eq!(intra_layer_worker_budget(1, 1), 1);
        assert_eq!(intra_layer_worker_budget(8, 0), 8);
        assert_eq!(intra_layer_worker_budget(0, 3), 1);
        assert_eq!(intra_layer_worker_budget(6, 2), 3);
    }

    #[test]
    fn sharded_model_run_is_schedule_independent() {
        // The same sharded engine must produce identical totals whether the
        // parallelism lives at the layer level or inside the layers.
        let model = DnnModel {
            name: "Tiny",
            short: "T",
            domain: flexagon_dnn::Domain::ComputerVision,
            layers: vec![
                LayerSpec::new(0, "l0", 24, 24, 24, 55.0, 55.0),
                LayerSpec::new(1, "l1", 24, 24, 24, 60.0, 50.0),
            ],
        };
        let engine = flexagon_core::EngineConfig::default().sharded(48, 3);
        let base = RunOptions {
            engine,
            layer_parallel: false,
            ..RunOptions::default()
        };
        let layered = RunOptions {
            layer_parallel: true,
            ..base
        };
        let a = run_model_opts(&model, 1, &base, false);
        let b = run_model_opts(&model, 1, &layered, false);
        assert_eq!(a.total_cycles, b.total_cycles);
        assert_eq!(a.winners, b.winners);
    }

    #[test]
    fn default_options_match_classic_runner() {
        let spec = LayerSpec::new(0, "t", 24, 24, 24, 50.0, 50.0);
        let classic = run_layer_with(&spec, 1, MappingStrategy::Oracle);
        let opts = run_layer_opts(&spec, 1, &RunOptions::default());
        assert_eq!(classic.gustavson.total_cycles, opts.gustavson.total_cycles);
        assert_eq!(classic.flexagon_dataflow, opts.flexagon_dataflow);
    }

    #[test]
    fn model_aggregation_sums_layers() {
        let model = DnnModel {
            name: "Tiny",
            short: "T",
            domain: flexagon_dnn::Domain::ComputerVision,
            layers: vec![
                LayerSpec::new(0, "l0", 16, 16, 16, 50.0, 50.0),
                LayerSpec::new(1, "l1", 16, 16, 16, 50.0, 50.0),
            ],
        };
        let results = run_model(&model, 1, false);
        assert_eq!(results.winners.len(), 2);
        assert!(results.speedup_vs_cpu(SystemId::Flexagon) > 0.0);
        let l0 = run_layer(&model.layers[0], 1);
        let l1 = run_layer(&model.layers[1], 1);
        assert_eq!(
            results.cycles(SystemId::GammaLike),
            l0.gustavson.total_cycles + l1.gustavson.total_cycles
        );
    }
}
