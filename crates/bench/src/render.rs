//! Plain-text table rendering for the harness binaries.

/// Renders a table with a header row and aligned columns.
///
/// ```
/// let t = flexagon_bench::render::table(
///     &["layer", "cycles"],
///     &[vec!["SQ5".into(), "123".into()]],
/// );
/// assert!(t.contains("SQ5"));
/// ```
pub fn table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<width$}", c, width = widths.get(i).copied().unwrap_or(0)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Formats bytes as mebibytes with two decimals.
pub fn mib(bytes: u64) -> String {
    format!("{:.2}", bytes as f64 / (1024.0 * 1024.0))
}

/// Formats bytes as kibibytes with one decimal.
pub fn kib(bytes: u64) -> String {
    format!("{:.1}", bytes as f64 / 1024.0)
}

/// Formats a ratio as a percentage with two decimals.
pub fn pct(x: f64) -> String {
    format!("{:.2}%", 100.0 * x)
}

/// Formats a speed-up factor.
pub fn speedup(x: f64) -> String {
    format!("{x:.2}x")
}

/// Geometric mean of a slice of positive values.
///
/// # Panics
///
/// Panics if `values` is empty or contains a non-positive value.
pub fn geomean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geomean of empty slice");
    let log_sum: f64 = values
        .iter()
        .map(|&v| {
            assert!(v > 0.0, "geomean requires positive values");
            v.ln()
        })
        .sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = table(
            &["a", "long-header"],
            &[
                vec!["xxxx".into(), "1".into()],
                vec!["y".into(), "2".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("a   "));
        assert!(lines[2].starts_with("xxxx"));
    }

    #[test]
    fn unit_formatting() {
        assert_eq!(mib(1 << 20), "1.00");
        assert_eq!(kib(1536), "1.5");
        assert_eq!(pct(0.0313), "3.13%");
        assert_eq!(speedup(4.59), "4.59x");
    }

    #[test]
    fn geomean_of_identical_values() {
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_known_value() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn geomean_empty_panics() {
        geomean(&[]);
    }
}
