//! Shared helpers for the benchmark harness.
//!
//! Every table and figure of the paper's evaluation section has a dedicated
//! binary under `src/bin/` (see DESIGN.md §5 for the index). This library
//! holds the pieces they share: running one layer across the four
//! accelerators, aggregating per-model results, and text-table rendering.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod mapper;
pub mod render;
pub mod runner;

pub use runner::{
    run_layer, run_layer_with, run_model, run_model_with, LayerResults, ModelResults, SystemId,
    DEFAULT_SEED,
};
