//! Criterion benches for the cycle-level simulator itself: wall-clock cost
//! of simulating one layer under each dataflow (the metric that bounds how
//! large a workload suite the harness can sweep).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flexagon_core::{Accelerator, Dataflow, ExecutionRequest, Flexagon};
use flexagon_sparse::{gen, CompressedMatrix, MajorOrder};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

fn layer(m: u32, k: u32, n: u32, da: f64, db: f64) -> (CompressedMatrix, CompressedMatrix) {
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    (
        gen::random(m, k, da, MajorOrder::Row, &mut rng),
        gen::random(k, n, db, MajorOrder::Row, &mut rng),
    )
}

fn bench_dataflows(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate_layer");
    group.sample_size(10);
    // A mid-size conv layer: 128x512 x 512x1024 at 80%/50% sparsity.
    let (a, b) = layer(128, 512, 1024, 0.2, 0.5);
    let accel = Flexagon::with_defaults();
    for df in Dataflow::M_STATIONARY {
        group.bench_with_input(
            BenchmarkId::new("table5", df.loop_order()),
            &df,
            |bench, &df| {
                bench.iter(|| {
                    accel
                        .execute(ExecutionRequest::new(black_box(&a), black_box(&b)).dataflow(df))
                        .unwrap()
                });
            },
        );
    }
    group.finish();
}

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate_scaling");
    group.sample_size(10);
    let accel = Flexagon::with_defaults();
    for &n in &[128u32, 256, 512] {
        let (a, b) = layer(n, n, n, 0.2, 0.3);
        group.bench_with_input(BenchmarkId::new("gustavson", n), &n, |bench, _| {
            bench.iter(|| {
                accel
                    .execute(
                        ExecutionRequest::new(black_box(&a), black_box(&b))
                            .dataflow(Dataflow::GustavsonM),
                    )
                    .unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dataflows, bench_scaling);
criterion_main!(benches);
