//! Criterion benches over accelerator configurations: how simulator
//! wall-time scales with the architectural knobs (the simulated-cycle
//! ablations live in the `ablations` binary).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flexagon_core::{Accelerator, AcceleratorConfig, Dataflow, ExecutionRequest, Flexagon};
use flexagon_sparse::{gen, MajorOrder};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

fn bench_multiplier_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator_vs_multipliers");
    group.sample_size(10);
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let a = gen::random(128, 256, 0.2, MajorOrder::Row, &mut rng);
    let b = gen::random(256, 512, 0.4, MajorOrder::Row, &mut rng);
    for &mults in &[16u32, 64, 256] {
        let mut cfg = AcceleratorConfig::table5();
        cfg.multipliers = mults;
        let accel = Flexagon::new(cfg);
        group.bench_with_input(BenchmarkId::new("gustavson", mults), &mults, |bench, _| {
            bench.iter(|| {
                accel
                    .execute(
                        ExecutionRequest::new(black_box(&a), black_box(&b))
                            .dataflow(Dataflow::GustavsonM),
                    )
                    .unwrap()
            });
        });
    }
    group.finish();
}

fn bench_psram_pressure(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator_vs_psram");
    group.sample_size(10);
    let mut rng = ChaCha8Rng::seed_from_u64(4);
    let a = gen::random(96, 256, 0.3, MajorOrder::Row, &mut rng);
    let b = gen::random(256, 384, 0.5, MajorOrder::Row, &mut rng);
    for &kib in &[32u64, 256] {
        let mut cfg = AcceleratorConfig::table5();
        cfg.memory.psram.capacity_bytes = kib << 10;
        let accel = Flexagon::new(cfg);
        group.bench_with_input(BenchmarkId::new("outer_product", kib), &kib, |bench, _| {
            bench.iter(|| {
                accel
                    .execute(
                        ExecutionRequest::new(black_box(&a), black_box(&b))
                            .dataflow(Dataflow::OuterProductM),
                    )
                    .unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_multiplier_scaling, bench_psram_pressure);
criterion_main!(benches);
