//! Criterion benches for the L1 memory structures: cache probe streams,
//! PSRAM partial-write/consume cycles and the k-way merge.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flexagon_mem::{Dram, Psram, StrCache};
use flexagon_sparse::{merge, Element, Fiber};
use std::hint::black_box;

fn bench_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("str_cache");
    group.bench_function("sequential_stream_64k_elems", |bench| {
        bench.iter(|| {
            let mut cache = StrCache::with_defaults();
            let mut dram = Dram::with_defaults();
            for chunk in 0..64 {
                cache.read_range(chunk * 1024, 1024, &mut dram);
            }
            black_box(cache.miss_rate())
        });
    });
    group.bench_function("random_fiber_fetches", |bench| {
        bench.iter(|| {
            let mut cache = StrCache::with_defaults();
            let mut dram = Dram::with_defaults();
            let mut addr = 11u64;
            for _ in 0..4096 {
                addr = (addr.wrapping_mul(6364136223846793005).wrapping_add(1)) % 1_000_000;
                cache.read_range(addr, 64, &mut dram);
            }
            black_box(cache.miss_rate())
        });
    });
    group.finish();
}

fn bench_psram(c: &mut Criterion) {
    c.bench_function("psram_write_consume_16k", |bench| {
        bench.iter(|| {
            let mut psram = Psram::with_defaults();
            let mut dram = Dram::with_defaults();
            for row in 0..16u32 {
                for k in 0..4u32 {
                    let elems: Vec<Element> = (0..256).map(|i| Element::new(i, 1.0)).collect();
                    psram.partial_write_fiber(row, k, &elems, &mut dram);
                }
            }
            let mut total = 0usize;
            for row in 0..16u32 {
                for k in 0..4u32 {
                    total += psram.consume_fiber(row, k, &mut dram).len();
                }
            }
            black_box(total)
        });
    });
}

fn bench_merge(c: &mut Criterion) {
    let mut group = c.benchmark_group("kway_merge");
    for &ways in &[4usize, 16, 64] {
        let fibers: Vec<Fiber> = (0..ways)
            .map(|w| {
                Fiber::from_sorted(
                    (0..512)
                        .map(|i| Element::new((i * ways + w) as u32, 1.0))
                        .collect(),
                )
            })
            .collect();
        group.bench_with_input(BenchmarkId::new("disjoint", ways), &ways, |bench, _| {
            let views: Vec<_> = fibers.iter().map(Fiber::as_view).collect();
            bench.iter(|| merge::merge_accumulate(black_box(&views)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cache, bench_psram, bench_merge);
criterion_main!(benches);
