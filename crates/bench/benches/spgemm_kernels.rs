//! Criterion benches for the software reference SpGEMM kernels — the
//! golden models and the CPU-baseline kernel.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flexagon_core::{Accelerator, Dataflow, Flexagon};
use flexagon_sparse::{
    gen, merge, reference, AccumConfig, AccumTier, CompressedMatrix, Fiber, FiberIndex, MajorOrder,
    RowAccum,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

fn operands(n: u32, density: f64) -> (CompressedMatrix, CompressedMatrix) {
    let mut rng = ChaCha8Rng::seed_from_u64(99);
    (
        gen::random(n, n, density, MajorOrder::Row, &mut rng),
        gen::random(n, n, density, MajorOrder::Row, &mut rng),
    )
}

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("spgemm_kernels");
    for &n in &[64u32, 256] {
        let (a, b) = operands(n, 0.1);
        let b_csc = b.converted(MajorOrder::Col);
        let a_csc = a.converted(MajorOrder::Col);
        group.bench_with_input(BenchmarkId::new("gustavson", n), &n, |bench, _| {
            bench.iter(|| reference::gustavson(black_box(&a), black_box(&b)).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("inner_product", n), &n, |bench, _| {
            bench.iter(|| reference::inner_product(black_box(&a), black_box(&b_csc)).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("outer_product", n), &n, |bench, _| {
            bench.iter(|| reference::outer_product(black_box(&a_csc), black_box(&b)).unwrap());
        });
    }
    group.finish();
}

/// A fiber of `len` elements drawn from a coordinate space of `space`.
fn intersection_fiber(len: usize, space: u32, seed: u64) -> Fiber {
    let density = len as f64 / space as f64;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    gen::random(1, space, density, MajorOrder::Row, &mut rng)
        .fiber(0)
        .to_fiber()
}

/// The three intersection strategies over balanced, skewed and sparse-span
/// fiber pairs: the naive two-pointer scan, galloping, and index probing
/// (bitmap or skip tier depending on span).
fn bench_intersection(c: &mut Criterion) {
    let mut group = c.benchmark_group("intersection");
    // (label, len_a, len_b, space): balanced dense-span, skewed (short
    // stationary list vs long fiber, the MNK tile shape), and sparse-span
    // pairs that exercise the skip tier.
    let shapes: &[(&str, usize, usize, u32)] = &[
        ("balanced/256", 256, 256, 1024),
        ("skewed/64x4096", 64, 4096, 16384),
        ("sparse_span/512", 512, 512, 1 << 24),
    ];
    for &(label, la, lb, space) in shapes {
        let a = intersection_fiber(la, space, 7);
        let b = intersection_fiber(lb, space, 8);
        let b_index = FiberIndex::build(b.coords());
        group.bench_function(BenchmarkId::new("dot", label), |bench| {
            bench.iter(|| black_box(a.as_view()).dot(black_box(b.as_view())));
        });
        group.bench_function(BenchmarkId::new("gallop", label), |bench| {
            bench.iter(|| black_box(a.as_view()).dot_gallop(black_box(b.as_view())));
        });
        group.bench_function(BenchmarkId::new("probe", label), |bench| {
            bench.iter(|| {
                black_box(a.as_view()).dot_probe(black_box(b.as_view()), black_box(&b_index))
            });
        });
    }
    // Index construction cost over a whole operand, amortized by the loops
    // that reuse it.
    let (_, b) = operands(512, 0.1);
    group.bench_function("index_build/512", |bench| {
        bench.iter(|| flexagon_sparse::MatrixIndex::build(black_box(&b).view()));
    });
    group.finish();
}

fn bench_conversion(c: &mut Criterion) {
    let (a, _) = operands(512, 0.1);
    c.bench_function("csr_to_csc_conversion_512", |bench| {
        bench.iter(|| black_box(&a).converted(MajorOrder::Col));
    });
}

/// `ways` sorted fibers of ~`len` elements each over a shared coordinate
/// space, so the merge sees realistic collision rates.
fn merge_inputs(ways: usize, len: usize) -> Vec<Fiber> {
    let mut rng = ChaCha8Rng::seed_from_u64(17);
    let space = (len * 4) as u64;
    let density = len as f64 / space as f64;
    (0..ways)
        .map(|_| {
            gen::random(1, space as u32, density, MajorOrder::Row, &mut rng)
                .fiber(0)
                .to_fiber()
        })
        .collect()
}

/// The tiered psum accumulators against the k-way merge they replace, per
/// tier: scatter+drain of `ways` scaled fibers vs `merge_accumulate` over
/// the same views. The shapes force each tier: a tight span for dense, a
/// medium span for the paged bitmap-directed gather, a huge span for the
/// sorted-run list.
fn bench_accumulators(c: &mut Criterion) {
    let mut group = c.benchmark_group("accumulators");
    let cfg = AccumConfig::default();
    // (label, ways, len per fiber, coordinate space)
    let shapes: &[(&str, usize, usize, u32)] = &[
        ("dense/64x256", 64, 256, 1024),
        ("paged/64x64", 64, 64, 1 << 17),
        ("runs/16x256", 16, 256, 1 << 26),
    ];
    for &(label, ways, len, space) in shapes {
        let fibers: Vec<Fiber> = (0..ways)
            .map(|s| intersection_fiber(len, space, 1000 + s as u64))
            .collect();
        let (lo, hi, nnz) = fibers.iter().filter(|f| !f.is_empty()).fold(
            (u32::MAX, 0u32, 0u64),
            |(lo, hi, nnz), f| {
                (
                    lo.min(f.coords()[0]),
                    hi.max(f.coords()[f.len() - 1]),
                    nnz + f.len() as u64,
                )
            },
        );
        let tier = AccumTier::select((hi - lo) as u64 + 1, nnz, &cfg);
        assert!(
            label.starts_with(tier.name()),
            "shape {label} selected tier {}",
            tier.name()
        );
        let mut acc = RowAccum::new();
        group.bench_function(BenchmarkId::new("scatter_drain", label), |bench| {
            bench.iter(|| {
                acc.begin(lo, hi, nnz, &cfg);
                for f in &fibers {
                    acc.scatter_scaled(black_box(f.as_view()), 1.5);
                }
                acc.drain()
            });
        });
        let scaled: Vec<Fiber> = fibers.iter().map(|f| f.scaled(1.5)).collect();
        group.bench_function(BenchmarkId::new("kway_reference", label), |bench| {
            bench.iter(|| {
                let views: Vec<_> = scaled.iter().map(Fiber::as_view).collect();
                merge::merge_accumulate(black_box(&views))
            });
        });
    }
    group.finish();
}

fn bench_kway_merge(c: &mut Criterion) {
    let mut group = c.benchmark_group("kway_merge");
    for &(ways, len) in &[(2usize, 4096usize), (4, 2048), (16, 512), (64, 256)] {
        let fibers = merge_inputs(ways, len);
        group.bench_with_input(
            BenchmarkId::new("accumulate", format!("{ways}way")),
            &ways,
            |bench, _| {
                bench.iter(|| {
                    let views: Vec<_> = fibers.iter().map(Fiber::as_view).collect();
                    merge::merge_accumulate(black_box(&views))
                });
            },
        );
    }
    group.finish();
}

fn bench_execute(c: &mut Criterion) {
    let mut group = c.benchmark_group("execute");
    group.sample_size(10);
    let mut rng = ChaCha8Rng::seed_from_u64(23);
    let a = gen::random(256, 512, 0.15, MajorOrder::Row, &mut rng);
    let b = gen::random(512, 512, 0.25, MajorOrder::Row, &mut rng);
    let accel = Flexagon::with_defaults();
    for df in Dataflow::M_STATIONARY {
        group.bench_with_input(
            BenchmarkId::new("table5", df.loop_order()),
            &df,
            |bench, &df| {
                bench.iter(|| accel.run(black_box(&a), black_box(&b), df).unwrap());
            },
        );
    }
    // The N-stationary duality path (reinterpreted transposes) — the case the
    // clone-free engine optimizes hardest.
    group.bench_function("table5/NKM", |bench| {
        bench.iter(|| {
            accel
                .run(black_box(&a), black_box(&b), Dataflow::GustavsonN)
                .unwrap()
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_kernels,
    bench_intersection,
    bench_conversion,
    bench_accumulators,
    bench_kway_merge,
    bench_execute
);
criterion_main!(benches);
