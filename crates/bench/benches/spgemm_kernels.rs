//! Criterion benches for the software reference SpGEMM kernels — the
//! golden models and the CPU-baseline kernel.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flexagon_core::{Accelerator, AcceleratorConfig, Dataflow, ExecutionRequest, Flexagon};
use flexagon_sparse::{
    gen, merge, reference, AccumConfig, AccumTier, BitmapMatrix, BlockedFiber, CompressedMatrix,
    Fiber, FiberFormat, FiberIndex, FormattedMatrix, MajorOrder, RowAccum,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

fn operands(n: u32, density: f64) -> (CompressedMatrix, CompressedMatrix) {
    let mut rng = ChaCha8Rng::seed_from_u64(99);
    (
        gen::random(n, n, density, MajorOrder::Row, &mut rng),
        gen::random(n, n, density, MajorOrder::Row, &mut rng),
    )
}

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("spgemm_kernels");
    for &n in &[64u32, 256] {
        let (a, b) = operands(n, 0.1);
        let b_csc = b.converted(MajorOrder::Col);
        let a_csc = a.converted(MajorOrder::Col);
        group.bench_with_input(BenchmarkId::new("gustavson", n), &n, |bench, _| {
            bench.iter(|| reference::gustavson(black_box(&a), black_box(&b)).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("inner_product", n), &n, |bench, _| {
            bench.iter(|| reference::inner_product(black_box(&a), black_box(&b_csc)).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("outer_product", n), &n, |bench, _| {
            bench.iter(|| reference::outer_product(black_box(&a_csc), black_box(&b)).unwrap());
        });
    }
    group.finish();
}

/// A fiber of `len` elements drawn from a coordinate space of `space`.
fn intersection_fiber(len: usize, space: u32, seed: u64) -> Fiber {
    let density = len as f64 / space as f64;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    gen::random(1, space, density, MajorOrder::Row, &mut rng)
        .fiber(0)
        .to_fiber()
}

/// The three intersection strategies over balanced, skewed and sparse-span
/// fiber pairs: the naive two-pointer scan, galloping, and index probing
/// (bitmap or skip tier depending on span).
fn bench_intersection(c: &mut Criterion) {
    let mut group = c.benchmark_group("intersection");
    // (label, len_a, len_b, space): balanced dense-span, skewed (short
    // stationary list vs long fiber, the MNK tile shape), and sparse-span
    // pairs that exercise the skip tier.
    let shapes: &[(&str, usize, usize, u32)] = &[
        ("balanced/256", 256, 256, 1024),
        ("skewed/64x4096", 64, 4096, 16384),
        ("sparse_span/512", 512, 512, 1 << 24),
    ];
    for &(label, la, lb, space) in shapes {
        let a = intersection_fiber(la, space, 7);
        let b = intersection_fiber(lb, space, 8);
        let b_index = FiberIndex::build(b.coords());
        group.bench_function(BenchmarkId::new("dot", label), |bench| {
            bench.iter(|| black_box(a.as_view()).dot(black_box(b.as_view())));
        });
        group.bench_function(BenchmarkId::new("gallop", label), |bench| {
            bench.iter(|| black_box(a.as_view()).dot_gallop(black_box(b.as_view())));
        });
        group.bench_function(BenchmarkId::new("probe", label), |bench| {
            bench.iter(|| {
                black_box(a.as_view()).dot_probe(black_box(b.as_view()), black_box(&b_index))
            });
        });
    }
    // Index construction cost over a whole operand, amortized by the loops
    // that reuse it.
    let (_, b) = operands(512, 0.1);
    group.bench_function("index_build/512", |bench| {
        bench.iter(|| flexagon_sparse::MatrixIndex::build(black_box(&b).view()));
    });
    group.finish();
}

/// ROADMAP item (b), measurement half: the two software-path gates on
/// `EngineConfig`/`AccumConfig` as direct crossover sweeps, so the default
/// thresholds can be re-derived from numbers instead of hand-tuning.
///
/// * `threshold_probe/{scan,probe}/r{R}` — the Inner-Product streaming
///   loop's per-fiber choice: mask-scan the streaming fiber against the
///   tile's k-bitmap, or probe the fiber's tiered index with the tile's
///   sorted stationary list. `R = fiber_len / stationary_len`; the engine
///   probes when `R >= probe_gate_factor`, so the gate should sit at the
///   measured crossover ratio.
/// * `threshold_probe/{dense,paged}_accum/s{S}` — the psum accumulator's
///   dense-vs-paged choice at span-per-element ratio `S = span / nnz`
///   (tiers forced via the config gates; identical scatter/drain results
///   either way). The dense tier pays `span` value slots, the paged tier
///   pays the bitmap plus page indirection; the gate
///   `dense_span_per_elem` should sit at the crossover `S`.
fn bench_threshold_probe(c: &mut Criterion) {
    let mut group = c.benchmark_group("threshold_probe");

    // Probe-vs-scan: one long streaming fiber, stationary lists of
    // decreasing length (increasing ratio R).
    let fiber_len = 4096usize;
    let space = 16384u32;
    let fiber = intersection_fiber(fiber_len, space, 31);
    let index = FiberIndex::build(fiber.coords());
    for ratio in [1usize, 2, 4, 8, 16, 32] {
        let stationary = intersection_fiber(fiber_len / ratio, space, 32 + ratio as u64);
        let k_list: Vec<u32> = stationary.coords().to_vec();
        // The tile's k-membership bitmap, as the engine builds it.
        let mut mask = vec![0u64; (space as usize).div_ceil(64)];
        for &k in &k_list {
            mask[(k >> 6) as usize] |= 1u64 << (k & 63);
        }
        group.bench_function(BenchmarkId::new("scan", format!("r{ratio}")), |bench| {
            bench.iter(|| {
                let mut hits = 0u64;
                let mut sum = 0.0f32;
                for (&c, &v) in fiber.coords().iter().zip(fiber.values()) {
                    if mask[(c >> 6) as usize] & (1u64 << (c & 63)) != 0 {
                        hits += 1;
                        sum += v;
                    }
                }
                black_box((hits, sum))
            });
        });
        group.bench_function(BenchmarkId::new("probe", format!("r{ratio}")), |bench| {
            bench.iter(|| {
                let mut prober = index.prober(fiber.as_view());
                let mut hits = 0u64;
                let mut sum = 0.0f32;
                for &k in &k_list {
                    if let Some((_, v)) = prober.probe(k) {
                        hits += 1;
                        sum += v;
                    }
                }
                black_box((hits, sum))
            });
        });
    }

    // Dense-vs-paged accumulator: fixed element volume, widening span.
    let ways = 16usize;
    let len = 256usize;
    let nnz = (ways * len) as u64;
    // Force a tier regardless of shape: dense needs the span gate wide
    // open, paged needs the dense gate shut and the paged gate open.
    let dense_cfg = AccumConfig {
        dense_span_per_elem: u64::MAX,
        dense_max_span: u64::MAX,
        ..AccumConfig::default()
    };
    let paged_cfg = AccumConfig {
        dense_span_per_elem: 0,
        paged_bits_per_elem: u64::MAX,
        paged_max_span: u64::MAX,
        ..AccumConfig::default()
    };
    for spe in [2u64, 4, 8, 16, 32, 64, 128, 256, 512] {
        let span = nnz * spe;
        let fibers: Vec<Fiber> = (0..ways)
            .map(|s| intersection_fiber(len, span as u32, 400 + spe * 31 + s as u64))
            .collect();
        let (lo, hi) = (0u32, span as u32 - 1);
        for (label, cfg, want) in [
            ("dense_accum", &dense_cfg, AccumTier::Dense),
            ("paged_accum", &paged_cfg, AccumTier::Paged),
        ] {
            let mut acc = RowAccum::new();
            acc.begin(lo, hi, nnz, cfg);
            assert_eq!(acc.tier(), Some(want), "{label} s{spe}");
            acc.drain();
            group.bench_function(BenchmarkId::new(label, format!("s{spe}")), |bench| {
                bench.iter(|| {
                    acc.begin(lo, hi, nnz, cfg);
                    for f in &fibers {
                        acc.scatter_scaled(black_box(f.as_view()), 1.5);
                    }
                    acc.drain()
                });
            });
        }
    }
    group.finish();
}

/// The four vectorized kernel families A/B'd against their scalar twins
/// through the `vendor/simd` runtime override, so both legs pay the same
/// dispatch cost and differ only in which instruction sequence runs:
///
/// * `merge2/*` — the bimodal 2-way merge (`merge::merge_two`), on an
///   interleaved pair (run length ~1, the hostile shape) and a skewed pair
///   (long runs, where the vector prefix scan pays off).
/// * `dot/*`, `gallop/*` — the sorted-intersection inner loops.
/// * `drain/*` — accumulator scatter+drain per tier; the drain half is the
///   bitmap-directed SIMD compress-store (scatter is scalar by design).
/// * `bitmap_and/*` — `BitmapMatrix::intersect_count` over word masks.
///
/// Under `FLEXAGON_SIMD=off` both legs take the scalar path (the env
/// override wins over the runtime toggle) and the pairs should measure
/// equal — a property the differential tests rely on.
fn bench_simd_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("simd_kernels");

    let inter_a = intersection_fiber(4096, 16384, 51);
    let inter_b = intersection_fiber(4096, 16384, 52);
    let skew_a = intersection_fiber(512, 65536, 53);
    let skew_b = intersection_fiber(8192, 65536, 54);
    let skew_b_index = FiberIndex::build(skew_b.coords());
    let sparse_a = intersection_fiber(512, 1 << 24, 55);
    let sparse_b = intersection_fiber(512, 1 << 24, 56);

    let mut rng = ChaCha8Rng::seed_from_u64(61);
    let bm_a =
        BitmapMatrix::from_compressed(&gen::random(512, 4096, 0.05, MajorOrder::Row, &mut rng));
    let bm_b =
        BitmapMatrix::from_compressed(&gen::random(512, 4096, 0.05, MajorOrder::Row, &mut rng));

    let cfg = AccumConfig::default();
    let accum_shapes: &[(&str, usize, usize, u32)] =
        &[("dense", 16, 256, 1024), ("paged", 64, 64, 200_000)];
    let accum_inputs: Vec<(&str, Vec<Fiber>, u32, u32, u64)> = accum_shapes
        .iter()
        .map(|&(label, ways, len, space)| {
            let fibers: Vec<Fiber> = (0..ways)
                .map(|s| intersection_fiber(len, space, 2000 + s as u64))
                .collect();
            let (lo, hi, nnz) = fibers.iter().filter(|f| !f.is_empty()).fold(
                (u32::MAX, 0u32, 0u64),
                |(lo, hi, nnz), f| {
                    (
                        lo.min(f.coords()[0]),
                        hi.max(f.coords()[f.len() - 1]),
                        nnz + f.len() as u64,
                    )
                },
            );
            (label, fibers, lo, hi, nnz)
        })
        .collect();

    for (mode, forced) in [("scalar", true), ("simd", false)] {
        simd::set_scalar_only(forced);
        group.bench_function(BenchmarkId::new("merge2/interleaved", mode), |bench| {
            bench.iter(|| {
                merge::merge_two(black_box(inter_a.as_view()), black_box(inter_b.as_view()))
            });
        });
        group.bench_function(BenchmarkId::new("merge2/skewed", mode), |bench| {
            bench.iter(|| {
                merge::merge_two(black_box(skew_a.as_view()), black_box(skew_b.as_view()))
            });
        });
        group.bench_function(BenchmarkId::new("dot/balanced", mode), |bench| {
            bench.iter(|| black_box(inter_a.as_view()).dot(black_box(inter_b.as_view())));
        });
        group.bench_function(BenchmarkId::new("dot/sparse_span", mode), |bench| {
            bench.iter(|| black_box(sparse_a.as_view()).dot(black_box(sparse_b.as_view())));
        });
        group.bench_function(BenchmarkId::new("gallop/skewed", mode), |bench| {
            bench.iter(|| black_box(skew_a.as_view()).dot_gallop(black_box(skew_b.as_view())));
        });
        group.bench_function(BenchmarkId::new("probe/skewed", mode), |bench| {
            bench.iter(|| {
                black_box(skew_a.as_view())
                    .dot_probe(black_box(skew_b.as_view()), black_box(&skew_b_index))
            });
        });
        for (label, fibers, lo, hi, nnz) in &accum_inputs {
            let mut acc = RowAccum::new();
            group.bench_function(BenchmarkId::new(&format!("drain/{label}"), mode), |bench| {
                bench.iter(|| {
                    acc.begin(*lo, *hi, *nnz, &cfg);
                    for f in fibers {
                        acc.scatter_scaled(black_box(f.as_view()), 1.5);
                    }
                    acc.drain()
                });
            });
        }
        group.bench_function(BenchmarkId::new("bitmap_and/512x4096", mode), |bench| {
            bench.iter(|| black_box(&bm_a).intersect_count(black_box(&bm_b)));
        });
    }
    simd::set_scalar_only(false);
    group.finish();
}

fn bench_conversion(c: &mut Criterion) {
    let (a, _) = operands(512, 0.1);
    c.bench_function("csr_to_csc_conversion_512", |bench| {
        bench.iter(|| black_box(&a).converted(MajorOrder::Col));
    });
}

/// `ways` sorted fibers of ~`len` elements each over a shared coordinate
/// space, so the merge sees realistic collision rates.
fn merge_inputs(ways: usize, len: usize) -> Vec<Fiber> {
    let mut rng = ChaCha8Rng::seed_from_u64(17);
    let space = (len * 4) as u64;
    let density = len as f64 / space as f64;
    (0..ways)
        .map(|_| {
            gen::random(1, space as u32, density, MajorOrder::Row, &mut rng)
                .fiber(0)
                .to_fiber()
        })
        .collect()
}

/// The tiered psum accumulators against the k-way merge they replace, per
/// tier: scatter+drain of `ways` scaled fibers vs `merge_accumulate` over
/// the same views. The shapes force each tier: a tight span for dense, a
/// medium span for the paged bitmap-directed gather, a huge span for the
/// sorted-run list.
fn bench_accumulators(c: &mut Criterion) {
    let mut group = c.benchmark_group("accumulators");
    let cfg = AccumConfig::default();
    // (label, ways, len per fiber, coordinate space)
    let shapes: &[(&str, usize, usize, u32)] = &[
        ("dense/64x256", 64, 256, 1024),
        // Span/nnz ~49: past the measured dense gate (32), inside the
        // paged bitmap budget (64 bits per element).
        ("paged/64x64", 64, 64, 200_000),
        ("runs/16x256", 16, 256, 1 << 26),
    ];
    for &(label, ways, len, space) in shapes {
        let fibers: Vec<Fiber> = (0..ways)
            .map(|s| intersection_fiber(len, space, 1000 + s as u64))
            .collect();
        let (lo, hi, nnz) = fibers.iter().filter(|f| !f.is_empty()).fold(
            (u32::MAX, 0u32, 0u64),
            |(lo, hi, nnz), f| {
                (
                    lo.min(f.coords()[0]),
                    hi.max(f.coords()[f.len() - 1]),
                    nnz + f.len() as u64,
                )
            },
        );
        let tier = AccumTier::select((hi - lo) as u64 + 1, nnz, &cfg);
        assert!(
            label.starts_with(tier.name()),
            "shape {label} selected tier {}",
            tier.name()
        );
        let mut acc = RowAccum::new();
        group.bench_function(BenchmarkId::new("scatter_drain", label), |bench| {
            bench.iter(|| {
                acc.begin(lo, hi, nnz, &cfg);
                for f in &fibers {
                    acc.scatter_scaled(black_box(f.as_view()), 1.5);
                }
                acc.drain()
            });
        });
        let scaled: Vec<Fiber> = fibers.iter().map(|f| f.scaled(1.5)).collect();
        group.bench_function(BenchmarkId::new("kway_reference", label), |bench| {
            bench.iter(|| {
                let views: Vec<_> = scaled.iter().map(Fiber::as_view).collect();
                merge::merge_accumulate(black_box(&views))
            });
        });
    }
    group.finish();
}

fn bench_kway_merge(c: &mut Criterion) {
    let mut group = c.benchmark_group("kway_merge");
    for &(ways, len) in &[(2usize, 4096usize), (4, 2048), (16, 512), (64, 256)] {
        let fibers = merge_inputs(ways, len);
        group.bench_with_input(
            BenchmarkId::new("accumulate", format!("{ways}way")),
            &ways,
            |bench, _| {
                bench.iter(|| {
                    let views: Vec<_> = fibers.iter().map(Fiber::as_view).collect();
                    merge::merge_accumulate(black_box(&views))
                });
            },
        );
    }
    group.finish();
}

fn bench_execute(c: &mut Criterion) {
    let mut group = c.benchmark_group("execute");
    group.sample_size(10);
    let mut rng = ChaCha8Rng::seed_from_u64(23);
    let a = gen::random(256, 512, 0.15, MajorOrder::Row, &mut rng);
    let b = gen::random(512, 512, 0.25, MajorOrder::Row, &mut rng);
    let accel = Flexagon::with_defaults();
    for df in Dataflow::M_STATIONARY {
        group.bench_with_input(
            BenchmarkId::new("table5", df.loop_order()),
            &df,
            |bench, &df| {
                bench.iter(|| {
                    accel
                        .execute(ExecutionRequest::new(black_box(&a), black_box(&b)).dataflow(df))
                        .unwrap()
                });
            },
        );
    }
    // The N-stationary duality path (reinterpreted transposes) — the case the
    // clone-free engine optimizes hardest.
    group.bench_function("table5/NKM", |bench| {
        bench.iter(|| {
            accel
                .execute(
                    ExecutionRequest::new(black_box(&a), black_box(&b))
                        .dataflow(Dataflow::GustavsonN),
                )
                .unwrap()
        });
    });
    group.finish();
}

/// The workspace-reuse win on sweep-style workloads: the same
/// six-dataflow sweep over a batch of small layers, once through a single
/// accelerator (hot `WorkspacePool` — the steady state performs no
/// scratch allocation) and once through a fresh accelerator per layer
/// (every execute re-allocates its tile plans, accumulator pools, stamp
/// vectors and k-entry tables). Small layers maximize the scratch-setup
/// share, which is exactly the oracle/`mapper_calibrate` sweep pattern.
fn bench_workspace_reuse(c: &mut Criterion) {
    let mut group = c.benchmark_group("workspace_reuse");
    let mut rng = ChaCha8Rng::seed_from_u64(41);
    let layers: Vec<(CompressedMatrix, CompressedMatrix)> = (0..32)
        .map(|_| {
            (
                gen::random(16, 24, 0.25, MajorOrder::Row, &mut rng),
                gen::random(24, 16, 0.3, MajorOrder::Row, &mut rng),
            )
        })
        .collect();
    let sweep = |accel: &Flexagon, a: &CompressedMatrix, b: &CompressedMatrix| {
        for df in Dataflow::ALL {
            black_box(
                accel
                    .execute(ExecutionRequest::new(black_box(a), black_box(b)).dataflow(df))
                    .unwrap(),
            );
        }
    };
    let pooled = Flexagon::with_defaults();
    group.bench_function("pooled/32x16", |bench| {
        bench.iter(|| {
            for (a, b) in &layers {
                sweep(&pooled, a, b);
            }
        });
    });
    group.bench_function("fresh/32x16", |bench| {
        bench.iter(|| {
            for (a, b) in &layers {
                sweep(&Flexagon::with_defaults(), a, b);
            }
        });
    });
    group.finish();
}

/// The intra-layer-sharded engine over the same operands as
/// `bench_execute`: fixed band grain, worker count from
/// `FLEXAGON_SHARD_WORKERS` (default 4). On a multi-core host the
/// `execute_sharded/table5/*` numbers should beat `execute/table5/*`; on a
/// single hardware thread the workers oversubscribe and the comparison
/// measures the sharding overhead instead.
fn bench_execute_sharded(c: &mut Criterion) {
    let mut group = c.benchmark_group("execute_sharded");
    group.sample_size(10);
    let mut rng = ChaCha8Rng::seed_from_u64(23);
    let a = gen::random(256, 512, 0.15, MajorOrder::Row, &mut rng);
    let b = gen::random(512, 512, 0.25, MajorOrder::Row, &mut rng);
    let workers = std::env::var("FLEXAGON_SHARD_WORKERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4usize);
    let mut cfg = AcceleratorConfig::table5();
    cfg.engine = cfg.engine.sharded(2048, workers);
    let accel = Flexagon::new(cfg);
    for df in Dataflow::M_STATIONARY {
        group.bench_with_input(
            BenchmarkId::new("table5", df.loop_order()),
            &df,
            |bench, &df| {
                bench.iter(|| {
                    accel
                        .execute(ExecutionRequest::new(black_box(&a), black_box(&b)).dataflow(df))
                        .unwrap()
                });
            },
        );
    }
    group.bench_function("table5/NKM", |bench| {
        bench.iter(|| {
            accel
                .execute(
                    ExecutionRequest::new(black_box(&a), black_box(&b))
                        .dataflow(Dataflow::GustavsonN),
                )
                .unwrap()
        });
    });
    group.finish();
}

/// The storage-format tier's kernels: the blocked masked dot against the
/// SoA coordinate-compare baselines on dense-clustered fibers (the BCSR
/// sweet spot — one compare per block instead of per element), and whole-
/// matrix encode/decode throughput per format (the staging cost a format
/// choice pays before any kernel runs).
fn bench_format_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("format_kernels");

    // Clustered fibers: coordinates drawn from dense runs, the structure
    // block_sparse workloads hand the engine. ~1024 elements in runs of 8.
    let clustered = |seed: u64| {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        gen::block_sparse(1, 16384, 8, 0.5, MajorOrder::Row, &mut rng)
            .fiber(0)
            .to_fiber()
    };
    let a = clustered(71);
    let b = clustered(72);
    let (a4, b4) = (
        BlockedFiber::encode(a.as_view(), 4),
        BlockedFiber::encode(b.as_view(), 4),
    );
    let (a8, b8) = (
        BlockedFiber::encode(a.as_view(), 8),
        BlockedFiber::encode(b.as_view(), 8),
    );
    group.bench_function("dot_clustered/soa", |bench| {
        bench.iter(|| black_box(a.as_view()).dot(black_box(b.as_view())));
    });
    group.bench_function("dot_clustered/bcsr4", |bench| {
        bench.iter(|| black_box(&a4).dot(black_box(&b4)));
    });
    group.bench_function("dot_clustered/bcsr8", |bench| {
        bench.iter(|| black_box(&a8).dot(black_box(&b8)));
    });

    // Whole-operand staging: encode and decode per format over the same
    // clustered matrix the engine would stage.
    let mut rng = ChaCha8Rng::seed_from_u64(73);
    let m = gen::block_sparse(256, 1024, 8, 0.25, MajorOrder::Row, &mut rng);
    for format in FiberFormat::ALL {
        if format == FiberFormat::Soa {
            continue;
        }
        group.bench_function(BenchmarkId::new("encode", format.token()), |bench| {
            bench.iter(|| FormattedMatrix::encode(black_box(&m), format));
        });
        let enc = FormattedMatrix::encode(&m, format);
        group.bench_function(BenchmarkId::new("decode", format.token()), |bench| {
            bench.iter(|| black_box(&enc).decode());
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_kernels,
    bench_intersection,
    bench_threshold_probe,
    bench_simd_kernels,
    bench_conversion,
    bench_accumulators,
    bench_kway_merge,
    bench_execute,
    bench_format_kernels,
    bench_workspace_reuse,
    bench_execute_sharded
);
criterion_main!(benches);
