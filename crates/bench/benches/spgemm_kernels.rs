//! Criterion benches for the software reference SpGEMM kernels — the
//! golden models and the CPU-baseline kernel.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flexagon_sparse::{gen, reference, CompressedMatrix, MajorOrder};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

fn operands(n: u32, density: f64) -> (CompressedMatrix, CompressedMatrix) {
    let mut rng = ChaCha8Rng::seed_from_u64(99);
    (
        gen::random(n, n, density, MajorOrder::Row, &mut rng),
        gen::random(n, n, density, MajorOrder::Row, &mut rng),
    )
}

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("spgemm_kernels");
    for &n in &[64u32, 256] {
        let (a, b) = operands(n, 0.1);
        let b_csc = b.converted(MajorOrder::Col);
        let a_csc = a.converted(MajorOrder::Col);
        group.bench_with_input(BenchmarkId::new("gustavson", n), &n, |bench, _| {
            bench.iter(|| reference::gustavson(black_box(&a), black_box(&b)).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("inner_product", n), &n, |bench, _| {
            bench.iter(|| reference::inner_product(black_box(&a), black_box(&b_csc)).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("outer_product", n), &n, |bench, _| {
            bench.iter(|| reference::outer_product(black_box(&a_csc), black_box(&b)).unwrap());
        });
    }
    group.finish();
}

fn bench_conversion(c: &mut Criterion) {
    let (a, _) = operands(512, 0.1);
    c.bench_function("csr_to_csc_conversion_512", |bench| {
        bench.iter(|| black_box(&a).converted(MajorOrder::Col));
    });
}

criterion_group!(benches, bench_kernels, bench_conversion);
criterion_main!(benches);
