//! Fiber storage formats: the representation tier *under* the dataflow.
//!
//! The paper's thesis — no single dataflow fits every layer — holds one
//! level down, of the storage format itself. The SoA coords+values
//! baseline ([`CompressedMatrix`]) is the most general representation, but
//! it spends four coordinate bytes per element even when the sparsity
//! pattern carries structure a cheaper encoding could exploit:
//!
//! * [`FiberFormat::Bcsr4`] / [`FiberFormat::Bcsr8`] — BCSR-style blocked
//!   fibers: elements grouped into fixed-width value blocks (one base
//!   coordinate + one occupancy mask per block), the SIMD-friendly layout
//!   for dense-clustered regions. A block holds at least one element, so
//!   storage is bounded, and the value slots are `f32` verbatim, so the
//!   encoding is bit-exact.
//! * [`FiberFormat::Ell`] — an ELL-ish fixed-width layout for uniform-row
//!   fibers: one `major_dim x width` value/coordinate grid plus per-fiber
//!   lengths, with no per-fiber pointer chasing. Encoding falls back to
//!   SoA storage when padding would exceed the [`ELL_WASTE_BUDGET`]
//!   allocation budget (adversarial skew or `u32`-boundary shapes).
//! * [`FiberFormat::Quant8`] — INT8-quantized values with one `f32` scale
//!   per [`QUANT_BLOCK`]-element block (the DNN-weight footprint format).
//!   This is the one *lossy* format: `|v - decode(encode(v))| <=
//!   max_abs_in_block / 254` for finite inputs, and it is opt-in only —
//!   the engine never selects it implicitly.
//!
//! Lossless formats ([`FiberFormat::is_lossless`]) decode back to the
//! exact `CompressedMatrix` they were encoded from — same pointer, same
//! coordinates, same value bits — which is how the engine's format staging
//! keeps every execution report byte-identical to the SoA baseline.
//!
//! [`FormatStats`] summarizes the shape features (row-length CV, block
//! fill, ELL waste) the mapper's format heuristic reads, and
//! [`BlockedFiber`] is the fiber-level blocked kernel (encode + masked
//! dot) that makes the clustered intersection fast without a round trip
//! through SoA.

use crate::{CompressedMatrix, Fiber, FiberView, MajorOrder, ValidationError, Value};
use serde::{Deserialize, Serialize};
use std::str::FromStr;
use std::sync::OnceLock;

/// Elements per quantization block of [`FiberFormat::Quant8`]: one `f32`
/// scale amortized over this many `i8` values (effective ~9.1 bits per
/// element, vs 64 for the SoA baseline's coord+value pair).
pub const QUANT_BLOCK: usize = 32;

/// ELL padding budget: encoding keeps the fixed-width grid only while
/// `major_dim * width <= ELL_WASTE_BUDGET * nnz + ELL_WASTE_SLACK` cells.
/// One pathological fiber (adversarial skew, or a near-empty matrix with a
/// `u32`-boundary major dimension) would otherwise turn a few wire bytes
/// into a gigabyte-scale grid; past the budget the encoder stores SoA
/// internally and the format becomes a no-op tag.
pub const ELL_WASTE_BUDGET: u64 = 4;

/// Constant slack of the ELL padding budget, so tiny matrices (where a
/// single short fiber dominates the ratio) still take the grid path.
pub const ELL_WASTE_SLACK: u64 = 1024;

/// The storage format of a fiber's element data — a mapping dimension
/// alongside [`Dataflow`](crate::stats), selected per layer by the mapper
/// or pinned by the client exactly like a dataflow token.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum FiberFormat {
    /// The SoA coords+values baseline (`CompressedMatrix` verbatim).
    #[default]
    Soa,
    /// Blocked fibers, 4-wide value blocks (lossless).
    Bcsr4,
    /// Blocked fibers, 8-wide value blocks (lossless).
    Bcsr8,
    /// Fixed-width padded rows with per-fiber lengths (lossless; falls
    /// back to SoA storage past the padding budget).
    Ell,
    /// INT8 values with per-block scales (**lossy**, opt-in only).
    Quant8,
}

impl FiberFormat {
    /// Every format, in token order.
    pub const ALL: [FiberFormat; 5] = [
        FiberFormat::Soa,
        FiberFormat::Bcsr4,
        FiberFormat::Bcsr8,
        FiberFormat::Ell,
        FiberFormat::Quant8,
    ];

    /// The client-facing token, as parsed by [`FromStr`] and carried in
    /// the serve protocol and CLI flags.
    pub fn token(self) -> &'static str {
        match self {
            FiberFormat::Soa => "soa",
            FiberFormat::Bcsr4 => "bcsr4",
            FiberFormat::Bcsr8 => "bcsr8",
            FiberFormat::Ell => "ell",
            FiberFormat::Quant8 => "q8",
        }
    }

    /// Whether encode → decode reproduces the exact input bits. Everything
    /// but [`FiberFormat::Quant8`] is lossless; only lossless formats are
    /// eligible for implicit selection (mapper heuristics, the
    /// `FLEXAGON_FORMAT` override).
    pub fn is_lossless(self) -> bool {
        !matches!(self, FiberFormat::Quant8)
    }

    /// Block width of the blocked formats (`None` for the others).
    pub fn block_width(self) -> Option<u32> {
        match self {
            FiberFormat::Bcsr4 => Some(4),
            FiberFormat::Bcsr8 => Some(8),
            _ => None,
        }
    }
}

impl std::fmt::Display for FiberFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.token())
    }
}

impl FromStr for FiberFormat {
    type Err = String;

    /// Parses a format token: `soa`, `bcsr4` (alias `bcsr`), `bcsr8`,
    /// `ell`, `q8` (alias `quant8`). Case-insensitive.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "soa" => Ok(FiberFormat::Soa),
            "bcsr" | "bcsr4" => Ok(FiberFormat::Bcsr4),
            "bcsr8" => Ok(FiberFormat::Bcsr8),
            "ell" => Ok(FiberFormat::Ell),
            "q8" | "quant8" => Ok(FiberFormat::Quant8),
            other => Err(format!(
                "unknown storage format '{other}' (expected soa, bcsr4, bcsr8, ell or q8)"
            )),
        }
    }
}

/// The `FLEXAGON_FORMAT` environment override, read once per process.
///
/// When set to a *lossless* format token it replaces the config-default
/// format for every run that doesn't pin one explicitly — the same
/// precedence `FLEXAGON_SIMD=off` has over the engine's `SimdMode` — so
/// the CI format matrix can force the whole test suite through one
/// storage tier while format-specific tests keep the format they asked
/// for. Unknown tokens and the lossy `q8` are ignored (quantization must
/// never be switched on ambiently).
pub fn env_format_override() -> Option<FiberFormat> {
    static OVERRIDE: OnceLock<Option<FiberFormat>> = OnceLock::new();
    *OVERRIDE.get_or_init(|| {
        std::env::var("FLEXAGON_FORMAT")
            .ok()
            .and_then(|v| v.parse::<FiberFormat>().ok())
            .filter(|f| f.is_lossless())
    })
}

/// Element storage of a [`FormattedMatrix`], one variant per layout
/// family. Kept private: the invariants (block bases sorted and
/// width-aligned, masks non-empty, ELL lengths within width) are
/// maintained by [`FormattedMatrix::encode`] and checked by
/// [`FormattedMatrix::validate`].
#[derive(Debug, Clone, PartialEq)]
enum Storage {
    /// The baseline layout, also the ELL fallback past the padding budget.
    Soa {
        ptr: Vec<usize>,
        coords: Vec<u32>,
        values: Vec<Value>,
    },
    /// Blocked fibers: `fiber_ptr[f]..fiber_ptr[f+1]` indexes the blocks
    /// of fiber `f`; block `i` covers coordinates `base[i] .. base[i] +
    /// width`, with `mask[i]` bit `l` set iff lane `l` holds an element
    /// and `vals[i*width + l]` carrying its value (absent lanes are 0.0).
    Blocked {
        width: u32,
        fiber_ptr: Vec<usize>,
        base: Vec<u32>,
        mask: Vec<u8>,
        vals: Vec<Value>,
    },
    /// Fixed-width grid: fiber `f` owns `coords/values[f*width ..]`, with
    /// `lens[f]` valid leading cells; padding cells are zeroed.
    Ell {
        width: usize,
        lens: Vec<u32>,
        coords: Vec<u32>,
        values: Vec<Value>,
    },
    /// Quantized values: SoA structure with `q[i]` the INT8 value of
    /// element `i` and `scales[i / QUANT_BLOCK]` its dequantization scale.
    Quant {
        ptr: Vec<usize>,
        coords: Vec<u32>,
        scales: Vec<Value>,
        q: Vec<i8>,
    },
}

/// A [`CompressedMatrix`] re-encoded into a [`FiberFormat`].
///
/// `encode` → [`decode`](FormattedMatrix::decode) round-trips losslessly
/// for every format but [`FiberFormat::Quant8`]; the engine's format
/// staging relies on that to keep default-format execution byte-identical.
///
/// ```
/// use flexagon_sparse::{CompressedMatrix, FiberFormat, FormattedMatrix, MajorOrder};
/// let m = CompressedMatrix::from_triplets(
///     2, 8, &[(0, 0, 1.0), (0, 1, 2.0), (0, 2, 3.0), (1, 5, 4.0)], MajorOrder::Row)
///     .unwrap();
/// let blocked = FormattedMatrix::encode(&m, FiberFormat::Bcsr4);
/// assert_eq!(blocked.decode(), m);
/// assert!(blocked.footprint_bytes() > 0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FormattedMatrix {
    format: FiberFormat,
    rows: u32,
    cols: u32,
    order: MajorOrder,
    nnz: usize,
    storage: Storage,
}

impl FormattedMatrix {
    /// Encodes `m` into `format`. Never fails: formats that cannot afford
    /// a shape (ELL past its padding budget) fall back to SoA storage
    /// under the same format tag, observable via
    /// [`storage_kind`](FormattedMatrix::storage_kind).
    pub fn encode(m: &CompressedMatrix, format: FiberFormat) -> Self {
        let storage = match format {
            FiberFormat::Soa => soa_storage(m),
            FiberFormat::Bcsr4 => blocked_storage(m, 4),
            FiberFormat::Bcsr8 => blocked_storage(m, 8),
            FiberFormat::Ell => ell_storage(m),
            FiberFormat::Quant8 => quant_storage(m),
        };
        Self {
            format,
            rows: m.rows(),
            cols: m.cols(),
            order: m.order(),
            nnz: m.nnz(),
            storage,
        }
    }

    /// The format this matrix was encoded into.
    pub fn format(&self) -> FiberFormat {
        self.format
    }

    /// Declared row count.
    pub fn rows(&self) -> u32 {
        self.rows
    }

    /// Declared column count.
    pub fn cols(&self) -> u32 {
        self.cols
    }

    /// Major order of the underlying fibers.
    pub fn order(&self) -> MajorOrder {
        self.order
    }

    /// Stored element count.
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// The storage family actually holding the elements (`"soa"`,
    /// `"blocked"`, `"ell"`, `"quant"`) — differs from the format tag only
    /// when ELL fell back to SoA past its padding budget.
    pub fn storage_kind(&self) -> &'static str {
        match &self.storage {
            Storage::Soa { .. } => "soa",
            Storage::Blocked { .. } => "blocked",
            Storage::Ell { .. } => "ell",
            Storage::Quant { .. } => "quant",
        }
    }

    /// Bytes of element storage in this encoding (the analogue of
    /// [`CompressedMatrix::compressed_size_bytes`], measured on the actual
    /// arrays).
    pub fn footprint_bytes(&self) -> usize {
        match &self.storage {
            Storage::Soa {
                ptr,
                coords,
                values,
            } => ptr.len() * 8 + coords.len() * 4 + values.len() * 4,
            Storage::Blocked {
                fiber_ptr,
                base,
                mask,
                vals,
                ..
            } => fiber_ptr.len() * 8 + base.len() * 4 + mask.len() + vals.len() * 4,
            Storage::Ell {
                lens,
                coords,
                values,
                ..
            } => lens.len() * 4 + coords.len() * 4 + values.len() * 4,
            Storage::Quant {
                ptr,
                coords,
                scales,
                q,
            } => ptr.len() * 8 + coords.len() * 4 + scales.len() * 4 + q.len(),
        }
    }

    /// Decodes back to the SoA baseline. Bit-identical to the encoded
    /// input for lossless formats; for [`FiberFormat::Quant8`] each value
    /// is `q * scale` (see the module docs for the error bound).
    ///
    /// # Panics
    ///
    /// Panics if the storage was corrupted after encoding (the encoder
    /// establishes the compressed invariants by construction; see
    /// [`validate`](FormattedMatrix::validate)).
    pub fn decode(&self) -> CompressedMatrix {
        let (ptr, coords, values) = match &self.storage {
            Storage::Soa {
                ptr,
                coords,
                values,
            } => (ptr.clone(), coords.clone(), values.clone()),
            Storage::Blocked {
                width,
                fiber_ptr,
                base,
                mask,
                vals,
            } => {
                let w = *width as usize;
                let mut ptr = Vec::with_capacity(fiber_ptr.len());
                let mut coords = Vec::with_capacity(self.nnz);
                let mut values = Vec::with_capacity(self.nnz);
                ptr.push(0);
                for f in 0..fiber_ptr.len() - 1 {
                    for blk in fiber_ptr[f]..fiber_ptr[f + 1] {
                        let mut m = mask[blk];
                        let window = &vals[blk * w..blk * w + w];
                        while m != 0 {
                            let lane = m.trailing_zeros() as usize;
                            coords.push(base[blk] + lane as u32);
                            values.push(window[lane]);
                            m &= m - 1;
                        }
                    }
                    ptr.push(coords.len());
                }
                (ptr, coords, values)
            }
            Storage::Ell {
                width,
                lens,
                coords,
                values,
            } => {
                let mut ptr = Vec::with_capacity(lens.len() + 1);
                let mut out_coords = Vec::with_capacity(self.nnz);
                let mut out_values = Vec::with_capacity(self.nnz);
                ptr.push(0);
                for (f, &len) in lens.iter().enumerate() {
                    let start = f * width;
                    let end = start + len as usize;
                    out_coords.extend_from_slice(&coords[start..end]);
                    // A plain copy, *not* `extend_scaled_f32(.., 1.0, ..)`:
                    // a lanewise multiply may canonicalize NaN payloads,
                    // and the lossless contract is bit-exact.
                    out_values.extend_from_slice(&values[start..end]);
                    ptr.push(out_coords.len());
                }
                (ptr, out_coords, out_values)
            }
            Storage::Quant {
                ptr,
                coords,
                scales,
                q,
            } => {
                let mut values = Vec::with_capacity(q.len());
                let mut block = Vec::with_capacity(QUANT_BLOCK);
                for (i, chunk) in q.chunks(QUANT_BLOCK).enumerate() {
                    block.clear();
                    block.extend(chunk.iter().map(|&x| x as f32));
                    // The dequantization drain is the one decode that runs
                    // through the vendored SIMD layer: a lanewise multiply
                    // of the widened INT8 block by its scale.
                    simd::extend_scaled_f32(&block, scales[i], &mut values);
                }
                (ptr.clone(), coords.clone(), values)
            }
        };
        CompressedMatrix::from_raw_parts(self.rows, self.cols, self.order, ptr, coords, values)
            .expect("formatted storage holds the compressed invariants")
    }

    /// Checks the encoding's internal invariants — the choke point for
    /// formatted representations that did not come out of
    /// [`encode`](FormattedMatrix::encode) (a future wire format, a
    /// corrupted cache entry).
    ///
    /// # Errors
    ///
    /// [`ValidationError::FormatDefect`] naming the violated invariant.
    pub fn validate(&self) -> Result<(), ValidationError> {
        let defect = |what: &'static str| Err(ValidationError::FormatDefect { what });
        let major = match self.order {
            MajorOrder::Row => self.rows,
            MajorOrder::Col => self.cols,
        } as usize;
        match &self.storage {
            Storage::Soa {
                ptr,
                coords,
                values,
            } => {
                if ptr.len() != major + 1 || ptr.first() != Some(&0) {
                    return defect("soa pointer shape");
                }
                if ptr.windows(2).any(|w| w[0] > w[1]) || ptr[major] != coords.len() {
                    return defect("soa pointer monotonicity");
                }
                if coords.len() != values.len() || coords.len() != self.nnz {
                    return defect("soa element count");
                }
            }
            Storage::Blocked {
                width,
                fiber_ptr,
                base,
                mask,
                vals,
            } => {
                let w = *width;
                if !(1..=8).contains(&w) {
                    return defect("blocked width out of range");
                }
                if fiber_ptr.len() != major + 1 || fiber_ptr.first() != Some(&0) {
                    return defect("blocked fiber pointer shape");
                }
                if fiber_ptr.windows(2).any(|x| x[0] > x[1]) || fiber_ptr[major] != base.len() {
                    return defect("blocked fiber pointer monotonicity");
                }
                if mask.len() != base.len() || vals.len() != base.len() * w as usize {
                    return defect("blocked array lengths");
                }
                if mask.contains(&0) {
                    return defect("blocked empty block");
                }
                if w < 8 && mask.iter().any(|&m| m >> w != 0) {
                    return defect("blocked mask beyond width");
                }
                if base.iter().any(|&b| b % w != 0) {
                    return defect("blocked base misaligned");
                }
                for f in 0..major {
                    let bases = &base[fiber_ptr[f]..fiber_ptr[f + 1]];
                    if bases.windows(2).any(|x| x[0] >= x[1]) {
                        return defect("blocked bases not increasing");
                    }
                }
                let elements: usize = mask.iter().map(|m| m.count_ones() as usize).sum();
                if elements != self.nnz {
                    return defect("blocked element count");
                }
            }
            Storage::Ell {
                width,
                lens,
                coords,
                values,
            } => {
                if lens.len() != major {
                    return defect("ell length-vector shape");
                }
                if coords.len() != major * width || values.len() != coords.len() {
                    return defect("ell grid shape");
                }
                if lens.iter().any(|&l| l as usize > *width) {
                    return defect("ell length beyond width");
                }
                if lens.iter().map(|&l| l as usize).sum::<usize>() != self.nnz {
                    return defect("ell element count");
                }
                for (f, &len) in lens.iter().enumerate() {
                    let row = &coords[f * width..f * width + len as usize];
                    if row.windows(2).any(|x| x[0] >= x[1]) {
                        return defect("ell coordinates not increasing");
                    }
                }
            }
            Storage::Quant {
                ptr,
                coords,
                scales,
                q,
            } => {
                if ptr.len() != major + 1 || ptr.first() != Some(&0) {
                    return defect("quant pointer shape");
                }
                if ptr.windows(2).any(|w| w[0] > w[1]) || ptr[major] != coords.len() {
                    return defect("quant pointer monotonicity");
                }
                if q.len() != coords.len() || q.len() != self.nnz {
                    return defect("quant element count");
                }
                if scales.len() != q.len().div_ceil(QUANT_BLOCK) {
                    return defect("quant scale count");
                }
            }
        }
        Ok(())
    }
}

fn soa_storage(m: &CompressedMatrix) -> Storage {
    Storage::Soa {
        ptr: m.ptr().to_vec(),
        coords: m.coords().to_vec(),
        values: m.values().to_vec(),
    }
}

fn blocked_storage(m: &CompressedMatrix, width: u32) -> Storage {
    let w = width as usize;
    let mut fiber_ptr = Vec::with_capacity(m.major_dim() as usize + 1);
    let mut base: Vec<u32> = Vec::new();
    let mut mask: Vec<u8> = Vec::new();
    let mut vals: Vec<Value> = Vec::new();
    fiber_ptr.push(0);
    for f in 0..m.major_dim() {
        let fiber = m.fiber(f);
        let fiber_start = base.len();
        for (&c, &v) in fiber.coords().iter().zip(fiber.values()) {
            let b = c - c % width;
            if base.len() == fiber_start || *base.last().expect("non-empty") != b {
                base.push(b);
                mask.push(0);
                vals.resize(vals.len() + w, 0.0);
            }
            let lane = (c - b) as usize;
            *mask.last_mut().expect("just pushed") |= 1 << lane;
            let start = vals.len() - w;
            vals[start + lane] = v;
        }
        fiber_ptr.push(base.len());
    }
    Storage::Blocked {
        width,
        fiber_ptr,
        base,
        mask,
        vals,
    }
}

fn ell_storage(m: &CompressedMatrix) -> Storage {
    let major = m.major_dim() as usize;
    let width = (0..m.major_dim())
        .map(|f| m.fiber_len(f))
        .max()
        .unwrap_or(0);
    let cells = major as u64 * width as u64;
    if cells > ELL_WASTE_BUDGET * m.nnz() as u64 + ELL_WASTE_SLACK {
        return soa_storage(m);
    }
    let mut lens = Vec::with_capacity(major);
    let mut coords = vec![0u32; major * width];
    let mut values = vec![0.0f32; major * width];
    for f in 0..m.major_dim() {
        let fiber = m.fiber(f);
        let len = fiber.len();
        lens.push(len as u32);
        let start = f as usize * width;
        coords[start..start + len].copy_from_slice(fiber.coords());
        values[start..start + len].copy_from_slice(fiber.values());
    }
    Storage::Ell {
        width,
        lens,
        coords,
        values,
    }
}

fn quant_storage(m: &CompressedMatrix) -> Storage {
    let mut scales = Vec::with_capacity(m.nnz().div_ceil(QUANT_BLOCK));
    let mut q = Vec::with_capacity(m.nnz());
    for chunk in m.values().chunks(QUANT_BLOCK) {
        let max_abs = chunk.iter().fold(0.0f32, |acc, v| acc.max(v.abs()));
        let scale = if max_abs == 0.0 { 0.0 } else { max_abs / 127.0 };
        scales.push(scale);
        if scale == 0.0 {
            q.resize(q.len() + chunk.len(), 0);
        } else {
            q.extend(
                chunk
                    .iter()
                    .map(|&v| (v / scale).round().clamp(-127.0, 127.0) as i8),
            );
        }
    }
    Storage::Quant {
        ptr: m.ptr().to_vec(),
        coords: m.coords().to_vec(),
        scales,
        q,
    }
}

/// A single fiber in the blocked layout: the kernel-level form of
/// [`FiberFormat::Bcsr4`]/[`FiberFormat::Bcsr8`], used where the engine
/// would otherwise run a coordinate-compare per element.
///
/// The masked dot walks block *bases* instead of coordinates — one compare
/// per block, then mask-AND plus up to `width` multiply-adds — and
/// accumulates matched lanes in ascending coordinate order, so the result
/// is bit-identical to [`FiberView::dot_scalar`] over the decoded fibers.
///
/// ```
/// use flexagon_sparse::{BlockedFiber, Element, Fiber};
/// let a = Fiber::from_sorted(vec![Element::new(0, 2.0), Element::new(1, 3.0)]);
/// let b = Fiber::from_sorted(vec![Element::new(1, 4.0), Element::new(9, 1.0)]);
/// let (ba, bb) = (BlockedFiber::encode(a.as_view(), 4), BlockedFiber::encode(b.as_view(), 4));
/// assert_eq!(ba.dot(&bb), 12.0);
/// assert_eq!(ba.decode(), a);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BlockedFiber {
    width: u32,
    len: usize,
    base: Vec<u32>,
    mask: Vec<u8>,
    vals: Vec<Value>,
}

impl BlockedFiber {
    /// Encodes a fiber into `width`-wide blocks (width 1–8; the engine
    /// formats use 4 and 8).
    ///
    /// # Panics
    ///
    /// Panics if `width` is outside `1..=8` (the mask is one byte).
    pub fn encode(fiber: FiberView<'_>, width: u32) -> Self {
        assert!((1..=8).contains(&width), "block width must be 1..=8");
        let w = width as usize;
        let mut base: Vec<u32> = Vec::new();
        let mut mask: Vec<u8> = Vec::new();
        let mut vals: Vec<Value> = Vec::new();
        for (&c, &v) in fiber.coords().iter().zip(fiber.values()) {
            let b = c - c % width;
            if base.last() != Some(&b) {
                base.push(b);
                mask.push(0);
                vals.resize(vals.len() + w, 0.0);
            }
            let lane = (c - b) as usize;
            *mask.last_mut().expect("just pushed") |= 1 << lane;
            let start = vals.len() - w;
            vals[start + lane] = v;
        }
        Self {
            width,
            len: fiber.len(),
            base,
            mask,
            vals,
        }
    }

    /// Block width.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Number of encoded elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when the fiber holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of blocks.
    pub fn n_blocks(&self) -> usize {
        self.base.len()
    }

    /// Occupied fraction of the allocated lanes (`1.0` for an empty
    /// fiber): the block-fill statistic of this fiber alone.
    pub fn fill(&self) -> f64 {
        if self.base.is_empty() {
            1.0
        } else {
            self.len as f64 / (self.base.len() * self.width as usize) as f64
        }
    }

    /// Sparse dot product against another blocked fiber of the same
    /// width, bit-identical to the scalar two-pointer dot over the
    /// decoded fibers (ascending-coordinate accumulation order).
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn dot(&self, other: &BlockedFiber) -> Value {
        assert_eq!(self.width, other.width, "blocked dot needs equal widths");
        let w = self.width as usize;
        let (mut i, mut j) = (0usize, 0usize);
        let mut acc = 0.0f32;
        while i < self.base.len() && j < other.base.len() {
            match self.base[i].cmp(&other.base[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    let mut m = self.mask[i] & other.mask[j];
                    let va = &self.vals[i * w..i * w + w];
                    let vb = &other.vals[j * w..j * w + w];
                    while m != 0 {
                        let lane = m.trailing_zeros() as usize;
                        acc += va[lane] * vb[lane];
                        m &= m - 1;
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
        acc
    }

    /// Visits every element in ascending coordinate order.
    pub fn for_each(&self, mut visit: impl FnMut(u32, Value)) {
        let w = self.width as usize;
        for (blk, &b) in self.base.iter().enumerate() {
            let mut m = self.mask[blk];
            let window = &self.vals[blk * w..blk * w + w];
            while m != 0 {
                let lane = m.trailing_zeros() as usize;
                visit(b + lane as u32, window[lane]);
                m &= m - 1;
            }
        }
    }

    /// Decodes back to a SoA fiber (bit-exact).
    pub fn decode(&self) -> Fiber {
        let mut coords = Vec::with_capacity(self.len);
        let mut values = Vec::with_capacity(self.len);
        self.for_each(|c, v| {
            coords.push(c);
            values.push(v);
        });
        Fiber::from_parts(coords, values)
    }
}

/// Shape statistics of a matrix's fibers — the features the mapper's
/// format heuristic reads (the format-tier analogue of the cost-model
/// features on the dataflow side).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FormatStats {
    /// Stored elements.
    pub nnz: usize,
    /// Fibers along the major dimension (including empty ones).
    pub fibers: usize,
    /// Mean fiber length over all fibers.
    pub row_len_mean: f64,
    /// Coefficient of variation of the fiber lengths (`stddev / mean`;
    /// `0.0` for an empty matrix). Low CV means uniform rows — the ELL
    /// sweet spot.
    pub row_len_cv: f64,
    /// `nnz / (blocks * 4)` under 4-wide blocking (`1.0` when empty):
    /// high fill means dense-clustered coordinates — the BCSR sweet spot.
    pub block_fill4: f64,
    /// Same under 8-wide blocking.
    pub block_fill8: f64,
    /// ELL padding ratio `(fibers * max_len - nnz) / nnz` (`0.0` when
    /// empty): the allocation cost of the fixed-width grid.
    pub ell_waste: f64,
    /// Fraction of non-empty fibers whose coordinate span is dense enough
    /// for the bitmap index tier ([`FiberIndex::classify`]) — a clustering
    /// signal independent of block alignment.
    ///
    /// [`FiberIndex::classify`]: crate::FiberIndex::classify
    pub bitmap_fiber_fraction: f64,
}

impl FormatStats {
    /// Computes the statistics in one pass over `m`'s fibers.
    pub fn of(m: &CompressedMatrix) -> Self {
        let fibers = m.major_dim() as usize;
        let nnz = m.nnz();
        let mut sum = 0.0f64;
        let mut sum_sq = 0.0f64;
        let mut max_len = 0usize;
        let mut blocks4 = 0usize;
        let mut blocks8 = 0usize;
        let mut nonempty = 0usize;
        let mut bitmap_fibers = 0usize;
        for f in 0..m.major_dim() {
            let coords = m.fiber(f).coords();
            let len = coords.len();
            sum += len as f64;
            sum_sq += (len * len) as f64;
            max_len = max_len.max(len);
            let mut last4 = u32::MAX;
            let mut last8 = u32::MAX;
            for &c in coords {
                let (b4, b8) = (c >> 2, c >> 3);
                if b4 != last4 {
                    blocks4 += 1;
                    last4 = b4;
                }
                if b8 != last8 {
                    blocks8 += 1;
                    last8 = b8;
                }
            }
            if len > 0 {
                nonempty += 1;
                if crate::FiberIndex::classify(coords) == "bitmap" {
                    bitmap_fibers += 1;
                }
            }
        }
        let mean = if fibers == 0 {
            0.0
        } else {
            sum / fibers as f64
        };
        let variance = if fibers == 0 {
            0.0
        } else {
            (sum_sq / fibers as f64 - mean * mean).max(0.0)
        };
        let cv = if mean > 0.0 {
            variance.sqrt() / mean
        } else {
            0.0
        };
        let fill = |blocks: usize, width: usize| {
            if blocks == 0 {
                1.0
            } else {
                nnz as f64 / (blocks * width) as f64
            }
        };
        let ell_waste = if nnz == 0 {
            0.0
        } else {
            (fibers as f64 * max_len as f64 - nnz as f64) / nnz as f64
        };
        Self {
            nnz,
            fibers,
            row_len_mean: mean,
            row_len_cv: cv,
            block_fill4: fill(blocks4, 4),
            block_fill8: fill(blocks8, 8),
            ell_waste,
            bitmap_fiber_fraction: if nonempty == 0 {
                0.0
            } else {
                bitmap_fibers as f64 / nonempty as f64
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Element, MajorOrder};

    fn matrix(triplets: &[(u32, u32, Value)], rows: u32, cols: u32) -> CompressedMatrix {
        CompressedMatrix::from_triplets(rows, cols, triplets, MajorOrder::Row).unwrap()
    }

    fn clustered() -> CompressedMatrix {
        // Two rows of dense 4-aligned runs plus a straggler.
        matrix(
            &[
                (0, 0, 1.0),
                (0, 1, 2.0),
                (0, 2, 3.0),
                (0, 3, 4.0),
                (0, 9, 5.0),
                (1, 4, 6.0),
                (1, 5, 7.0),
                (2, 7, -0.0),
            ],
            4,
            12,
        )
    }

    #[test]
    fn tokens_roundtrip() {
        for fmt in FiberFormat::ALL {
            assert_eq!(fmt.token().parse::<FiberFormat>().unwrap(), fmt);
            assert_eq!(format!("{fmt}"), fmt.token());
        }
        assert_eq!("bcsr".parse::<FiberFormat>().unwrap(), FiberFormat::Bcsr4);
        assert_eq!(
            "QUANT8".parse::<FiberFormat>().unwrap(),
            FiberFormat::Quant8
        );
        assert!("csr5".parse::<FiberFormat>().is_err());
    }

    #[test]
    fn lossless_formats_roundtrip_bit_exact() {
        let cases = [
            clustered(),
            matrix(&[], 0, 0),
            matrix(&[], 5, 7),
            matrix(&[(0, 0, f32::NAN), (2, 6, -0.0)], 3, 8),
            CompressedMatrix::from_triplets(
                3,
                4,
                &[(0, 1, 1.5), (1, 0, 2.5), (2, 3, 3.5)],
                MajorOrder::Col,
            )
            .unwrap(),
        ];
        for m in &cases {
            for fmt in FiberFormat::ALL.into_iter().filter(|f| f.is_lossless()) {
                let enc = FormattedMatrix::encode(m, fmt);
                enc.validate().unwrap();
                let dec = enc.decode();
                assert_eq!(dec.ptr(), m.ptr(), "{fmt} ptr");
                assert_eq!(dec.coords(), m.coords(), "{fmt} coords");
                let bits = |vs: &[Value]| vs.iter().map(|v| v.to_bits()).collect::<Vec<_>>();
                assert_eq!(bits(dec.values()), bits(m.values()), "{fmt} value bits");
                assert_eq!(dec.rows(), m.rows());
                assert_eq!(dec.cols(), m.cols());
                assert_eq!(dec.order(), m.order());
            }
        }
    }

    #[test]
    fn ell_falls_back_past_the_padding_budget() {
        // One long fiber over many empty ones: the grid would cost
        // fibers x width cells for almost no elements.
        let skew: Vec<(u32, u32, Value)> = (0..64).map(|i| (0, i * 3, i as Value)).collect();
        let m = matrix(&skew, 4096, 256);
        let enc = FormattedMatrix::encode(&m, FiberFormat::Ell);
        assert_eq!(enc.storage_kind(), "soa");
        assert_eq!(enc.format(), FiberFormat::Ell);
        enc.validate().unwrap();
        assert_eq!(enc.decode(), m);
        // A uniform matrix keeps the grid.
        let uniform: Vec<(u32, u32, Value)> = (0..16)
            .flat_map(|r| (0..4).map(move |c| (r, c * 2, 1.0)))
            .collect();
        let u = matrix(&uniform, 16, 8);
        assert_eq!(
            FormattedMatrix::encode(&u, FiberFormat::Ell).storage_kind(),
            "ell"
        );
    }

    #[test]
    fn quant_error_is_bounded_per_block() {
        let vals: Vec<(u32, u32, Value)> = (0..200)
            .map(|i| (i / 20, i % 20, ((i as f32) * 0.37 - 40.0) * 1.7))
            .collect();
        let m = matrix(&vals, 10, 20);
        let enc = FormattedMatrix::encode(&m, FiberFormat::Quant8);
        enc.validate().unwrap();
        let dec = enc.decode();
        assert_eq!(dec.coords(), m.coords());
        for (chunk, dchunk) in m
            .values()
            .chunks(QUANT_BLOCK)
            .zip(dec.values().chunks(QUANT_BLOCK))
        {
            let max_abs = chunk.iter().fold(0.0f32, |a, v| a.max(v.abs()));
            let bound = max_abs / 253.0; // max_abs/254 plus float slack
            for (v, d) in chunk.iter().zip(dchunk) {
                assert!(
                    (v - d).abs() <= bound,
                    "quant error {} exceeds bound {bound}",
                    (v - d).abs()
                );
            }
        }
        // Footprint: ~9 bits per element vs 64 for SoA.
        assert!(
            enc.footprint_bytes() < FormattedMatrix::encode(&m, FiberFormat::Soa).footprint_bytes()
        );
    }

    #[test]
    fn blocked_fiber_dot_matches_scalar() {
        let a = Fiber::from_sorted(
            [(0u32, 1.5f32), (1, -2.0), (2, 0.25), (9, 4.0), (10, 1.0)]
                .iter()
                .map(|&(c, v)| Element::new(c, v))
                .collect(),
        );
        let b = Fiber::from_sorted(
            [(1u32, 3.0f32), (2, -1.0), (8, 2.0), (10, 0.5)]
                .iter()
                .map(|&(c, v)| Element::new(c, v))
                .collect(),
        );
        for width in [1u32, 4, 8] {
            let ba = BlockedFiber::encode(a.as_view(), width);
            let bb = BlockedFiber::encode(b.as_view(), width);
            assert_eq!(
                ba.dot(&bb).to_bits(),
                a.as_view().dot_scalar(b.as_view()).0.to_bits(),
                "width {width}"
            );
            assert_eq!(ba.decode(), a);
            assert_eq!(bb.len(), b.len());
        }
        let ba = BlockedFiber::encode(a.as_view(), 4);
        assert!(ba.fill() > 0.0 && ba.fill() <= 1.0);
        assert!(!ba.is_empty());
        assert!(BlockedFiber::encode(Fiber::new().as_view(), 4).is_empty());
    }

    #[test]
    fn format_stats_read_the_shape() {
        let s = FormatStats::of(&clustered());
        assert_eq!(s.nnz, 8);
        assert_eq!(s.fibers, 4);
        assert!(s.block_fill4 > 0.4, "clustered rows fill blocks: {s:?}");
        assert!(s.row_len_cv > 0.0);
        // A uniform diagonal: CV 0, minimal fill.
        let diag: Vec<(u32, u32, Value)> = (0..32).map(|i| (i, (i * 9) % 64, 1.0)).collect();
        let d = FormatStats::of(&matrix(&diag, 32, 64));
        assert!(d.row_len_cv < 1e-9);
        assert!(d.block_fill4 <= 0.5);
        assert_eq!(d.ell_waste, 0.0);
        // Empty matrix: all-neutral stats.
        let e = FormatStats::of(&matrix(&[], 3, 3));
        assert_eq!(e.nnz, 0);
        assert_eq!(e.block_fill4, 1.0);
        assert_eq!(e.ell_waste, 0.0);
    }

    #[test]
    fn validate_catches_corruption() {
        let m = clustered();
        let mut enc = FormattedMatrix::encode(&m, FiberFormat::Bcsr4);
        enc.validate().unwrap();
        if let Storage::Blocked { mask, .. } = &mut enc.storage {
            mask[0] = 0;
        }
        assert!(matches!(
            enc.validate(),
            Err(ValidationError::FormatDefect { .. })
        ));
    }

    #[test]
    fn footprints_track_the_encoding() {
        let m = clustered();
        for fmt in FiberFormat::ALL {
            let enc = FormattedMatrix::encode(&m, fmt);
            assert!(enc.footprint_bytes() > 0, "{fmt}");
            assert_eq!(enc.nnz(), m.nnz());
        }
    }
}
