//! The unified CSR/CSC compressed matrix representation.

use crate::fiber::ElementIter;
use crate::{Fiber, FiberView, FormatError, Result, Value, ELEMENT_BYTES};
use serde::{Deserialize, Serialize};
use std::sync::OnceLock;

/// Major order of a [`CompressedMatrix`]: row-major is CSR, column-major CSC.
///
/// The paper (§2.1) notes that CSR and CSC "employ the same compression
/// method, and thus, can be seen as a single compression format", sharing
/// control logic in the accelerator. We encode that as a tag on one type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MajorOrder {
    /// Row-major compression (CSR): fibers are rows, coordinates are columns.
    Row,
    /// Column-major compression (CSC): fibers are columns, coordinates are rows.
    Col,
}

impl MajorOrder {
    /// The opposite order.
    #[must_use]
    pub fn flipped(self) -> Self {
        match self {
            Self::Row => Self::Col,
            Self::Col => Self::Row,
        }
    }

    /// Conventional format name: `"CSR"` or `"CSC"`.
    pub fn format_name(self) -> &'static str {
        match self {
            Self::Row => "CSR",
            Self::Col => "CSC",
        }
    }
}

impl std::fmt::Display for MajorOrder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Row => write!(f, "row-major"),
            Self::Col => write!(f, "column-major"),
        }
    }
}

/// A sparse matrix compressed in CSR or CSC form.
///
/// Storage follows the paper's description: a pointer vector marking where
/// each fiber begins, plus per-element data held struct-of-arrays (one
/// coordinate array, one value array) so a fiber is a pair of contiguous,
/// zero-copy slices — the layout the merge and intersection hot loops want.
///
/// # Example
///
/// ```
/// use flexagon_sparse::{CompressedMatrix, MajorOrder};
///
/// # fn main() -> Result<(), flexagon_sparse::FormatError> {
/// let m = CompressedMatrix::from_triplets(
///     2, 2, &[(0, 0, 1.0), (1, 1, 2.0)], MajorOrder::Row)?;
/// assert_eq!(m.nnz(), 2);
/// assert_eq!(m.fiber(1).coords()[0], 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct CompressedMatrix {
    rows: u32,
    cols: u32,
    order: MajorOrder,
    /// `ptr[i]..ptr[i+1]` delimits fiber `i` within the element arrays.
    ptr: Vec<usize>,
    /// Minor coordinates, fiber-major order.
    coords: Vec<u32>,
    /// Values, parallel to `coords`.
    values: Vec<Value>,
    /// Memoized structural transpose plan, built on the first explicit
    /// conversion. Ignored by `Clone`, `PartialEq` and serialization — it is
    /// derived state, recomputable from `coords` alone.
    transpose_plan: OnceLock<TransposePlan>,
}

/// The structure-only part of a CSR↔CSC conversion: the flipped pointer
/// vector and each element's destination slot. Value-independent, so one
/// plan serves every conversion of the same matrix — and the mapper oracle
/// converts the same operands once per candidate dataflow.
#[derive(Debug, Clone)]
struct TransposePlan {
    /// Pointer vector of the converted matrix.
    ptr: Vec<usize>,
    /// `dest[i]` is where element `i` (fiber-major order) lands after the
    /// flip.
    dest: Vec<u32>,
}

/// Counting-sort prefix and destination slots for flipping a compressed
/// layout with `majors_out` output fibers.
fn build_transpose_plan(majors_out: usize, coords: &[u32]) -> TransposePlan {
    let mut cursor = vec![0u32; majors_out + 1];
    for &c in coords {
        cursor[c as usize + 1] += 1;
    }
    for i in 0..majors_out {
        cursor[i + 1] += cursor[i];
    }
    let ptr: Vec<usize> = cursor.iter().map(|&c| c as usize).collect();
    let mut dest = vec![0u32; coords.len()];
    for (i, &c) in coords.iter().enumerate() {
        let slot = &mut cursor[c as usize];
        dest[i] = *slot;
        *slot += 1;
    }
    TransposePlan { ptr, dest }
}

/// Applies a transpose plan: scatters the source majors and values into the
/// converted SoA arrays, one random-write stream per pass.
fn apply_transpose_plan(
    plan: &TransposePlan,
    src_ptr: &[usize],
    src_values: &[Value],
) -> (Vec<u32>, Vec<Value>) {
    let nnz = src_values.len();
    // Pass 1: scatter the new minor coordinates (the source majors).
    let mut coords = vec![0u32; nnz];
    for major in 0..src_ptr.len() - 1 {
        for &d in &plan.dest[src_ptr[major]..src_ptr[major + 1]] {
            coords[d as usize] = major as u32;
        }
    }
    // Pass 2: scatter the values.
    let mut values = vec![0.0f32; nnz];
    for (i, &d) in plan.dest.iter().enumerate() {
        values[d as usize] = src_values[i];
    }
    (coords, values)
}

impl Clone for CompressedMatrix {
    /// Clones the matrix data. The transpose plan is not carried over; it is
    /// rebuilt on the clone's first conversion.
    fn clone(&self) -> Self {
        Self {
            rows: self.rows,
            cols: self.cols,
            order: self.order,
            ptr: self.ptr.clone(),
            coords: self.coords.clone(),
            values: self.values.clone(),
            transpose_plan: OnceLock::new(),
        }
    }
}

impl PartialEq for CompressedMatrix {
    /// Structural and value equality; the memoized plan does not participate.
    fn eq(&self, other: &Self) -> bool {
        self.rows == other.rows
            && self.cols == other.cols
            && self.order == other.order
            && self.ptr == other.ptr
            && self.coords == other.coords
            && self.values == other.values
    }
}

impl Serialize for CompressedMatrix {
    /// Mirrors the derived field-map encoding (the plan is never emitted).
    fn to_value(&self) -> serde::Value {
        serde::Value::Map(vec![
            (String::from("rows"), self.rows.to_value()),
            (String::from("cols"), self.cols.to_value()),
            (String::from("order"), self.order.to_value()),
            (String::from("ptr"), self.ptr.to_value()),
            (String::from("coords"), self.coords.to_value()),
            (String::from("values"), self.values.to_value()),
        ])
    }
}

impl Deserialize for CompressedMatrix {
    /// Decodes the field map and routes it through
    /// [`CompressedMatrix::from_raw_parts`] — wire bytes cannot construct a
    /// matrix that violates the structural invariants the engine's hot
    /// loops index by without checking.
    fn from_value(v: &serde::Value) -> std::result::Result<Self, serde::DeError> {
        let m = v
            .as_map()
            .ok_or_else(|| serde::DeError::new("expected a JSON object for CompressedMatrix"))?;
        Self::from_raw_parts(
            Deserialize::from_value(serde::map_get(m, "rows")?)?,
            Deserialize::from_value(serde::map_get(m, "cols")?)?,
            Deserialize::from_value(serde::map_get(m, "order")?)?,
            Deserialize::from_value(serde::map_get(m, "ptr")?)?,
            Deserialize::from_value(serde::map_get(m, "coords")?)?,
            Deserialize::from_value(serde::map_get(m, "values")?)?,
        )
        .map_err(|e| serde::DeError::new(&format!("invalid CompressedMatrix: {e}")))
    }
}

impl CompressedMatrix {
    /// Creates an empty (all-zero) matrix in the given order.
    pub fn zero(rows: u32, cols: u32, order: MajorOrder) -> Self {
        let majors = match order {
            MajorOrder::Row => rows,
            MajorOrder::Col => cols,
        };
        Self {
            rows,
            cols,
            order,
            ptr: vec![0; majors as usize + 1],
            coords: Vec::new(),
            values: Vec::new(),
            transpose_plan: OnceLock::new(),
        }
    }

    /// Builds a matrix from `(row, col, value)` triplets.
    ///
    /// Triplets may arrive in any order. Zero-valued entries are kept (they
    /// were explicitly provided), matching how pruned-but-stored weights
    /// behave.
    ///
    /// # Errors
    ///
    /// Returns [`FormatError::CoordOutOfBounds`] if an entry lies outside
    /// `rows x cols` and [`FormatError::DuplicateCoord`] if a position
    /// repeats.
    pub fn from_triplets(
        rows: u32,
        cols: u32,
        triplets: &[(u32, u32, Value)],
        order: MajorOrder,
    ) -> Result<Self> {
        for &(r, c, _) in triplets {
            if r >= rows || c >= cols {
                return Err(FormatError::CoordOutOfBounds {
                    row: r,
                    col: c,
                    rows,
                    cols,
                });
            }
        }
        let majors = match order {
            MajorOrder::Row => rows,
            MajorOrder::Col => cols,
        } as usize;
        let mut counts = vec![0usize; majors + 1];
        for &(r, c, _) in triplets {
            let major = match order {
                MajorOrder::Row => r,
                MajorOrder::Col => c,
            } as usize;
            counts[major + 1] += 1;
        }
        for i in 0..majors {
            counts[i + 1] += counts[i];
        }
        let ptr = counts.clone();
        let mut cursor = counts;
        let mut coords = vec![0u32; triplets.len()];
        let mut values = vec![0.0f32; triplets.len()];
        for &(r, c, v) in triplets {
            let (major, minor) = match order {
                MajorOrder::Row => (r as usize, c),
                MajorOrder::Col => (c as usize, r),
            };
            coords[cursor[major]] = minor;
            values[cursor[major]] = v;
            cursor[major] += 1;
        }
        // Sort each fiber by coordinate through an index permutation so the
        // parallel arrays stay in lockstep.
        let mut perm: Vec<u32> = Vec::new();
        for i in 0..majors {
            let (start, end) = (ptr[i], ptr[i + 1]);
            let span = end - start;
            if span > 1 {
                perm.clear();
                perm.extend(0..span as u32);
                perm.sort_by_key(|&p| coords[start + p as usize]);
                let fiber_coords: Vec<u32> =
                    perm.iter().map(|&p| coords[start + p as usize]).collect();
                let fiber_values: Vec<Value> =
                    perm.iter().map(|&p| values[start + p as usize]).collect();
                coords[start..end].copy_from_slice(&fiber_coords);
                values[start..end].copy_from_slice(&fiber_values);
            }
            for w in coords[start..end].windows(2) {
                if w[0] == w[1] {
                    let (row, col) = match order {
                        MajorOrder::Row => (i as u32, w[0]),
                        MajorOrder::Col => (w[0], i as u32),
                    };
                    return Err(FormatError::DuplicateCoord { row, col });
                }
            }
        }
        Ok(Self {
            rows,
            cols,
            order,
            ptr,
            coords,
            values,
            transpose_plan: OnceLock::new(),
        })
    }

    /// Builds a matrix directly from its storage arrays, validating the
    /// structural invariants before the parts become a matrix.
    ///
    /// This is the ingestion path for *decoded* representations — the serve
    /// protocol's operand fields, golden fixtures — where the arrays arrive
    /// from bytes rather than from a constructor that established the
    /// invariants. Validation here is structural only
    /// ([`CompressedMatrix::validate`]); resource ceilings and value
    /// policies are the caller's choice via
    /// [`crate::validate::validate_matrix`].
    ///
    /// # Errors
    ///
    /// Returns [`crate::validate::ValidationError::Structure`] wrapping the
    /// first structural defect found.
    pub fn from_raw_parts(
        rows: u32,
        cols: u32,
        order: MajorOrder,
        ptr: Vec<usize>,
        coords: Vec<u32>,
        values: Vec<Value>,
    ) -> std::result::Result<Self, crate::validate::ValidationError> {
        let m = Self {
            rows,
            cols,
            order,
            ptr,
            coords,
            values,
            transpose_plan: OnceLock::new(),
        };
        m.validate()?;
        Ok(m)
    }

    /// Builds a matrix from per-fiber element lists.
    ///
    /// `fibers[i]` becomes fiber `i`; its length must equal the major
    /// dimension implied by `order`.
    ///
    /// # Errors
    ///
    /// Returns [`FormatError::MalformedPointers`] when the fiber count does
    /// not match the major dimension, and [`FormatError::CoordOutOfBounds`]
    /// when an element's coordinate exceeds the minor dimension.
    pub fn from_fibers(
        rows: u32,
        cols: u32,
        order: MajorOrder,
        fibers: Vec<Fiber>,
    ) -> Result<Self> {
        let (majors, minors) = match order {
            MajorOrder::Row => (rows, cols),
            MajorOrder::Col => (cols, rows),
        };
        if fibers.len() != majors as usize {
            return Err(FormatError::MalformedPointers {
                detail: format!(
                    "expected {majors} fibers for a {rows}x{cols} {} matrix, got {}",
                    order.format_name(),
                    fibers.len()
                ),
            });
        }
        let total: usize = fibers.iter().map(Fiber::len).sum();
        let mut ptr = Vec::with_capacity(majors as usize + 1);
        let mut coords = Vec::with_capacity(total);
        let mut values = Vec::with_capacity(total);
        ptr.push(0);
        for (i, fiber) in fibers.iter().enumerate() {
            if let Some(&max) = fiber.coords().last() {
                if max >= minors {
                    let bad = *fiber
                        .coords()
                        .iter()
                        .find(|&&c| c >= minors)
                        .expect("max out of range implies some out of range");
                    let (row, col) = match order {
                        MajorOrder::Row => (i as u32, bad),
                        MajorOrder::Col => (bad, i as u32),
                    };
                    return Err(FormatError::CoordOutOfBounds {
                        row,
                        col,
                        rows,
                        cols,
                    });
                }
            }
            coords.extend_from_slice(fiber.coords());
            values.extend_from_slice(fiber.values());
            ptr.push(coords.len());
        }
        Ok(Self {
            rows,
            cols,
            order,
            ptr,
            coords,
            values,
            transpose_plan: OnceLock::new(),
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> u32 {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> u32 {
        self.cols
    }

    /// The compression order (CSR or CSC).
    pub fn order(&self) -> MajorOrder {
        self.order
    }

    /// Number of fibers (rows for CSR, columns for CSC).
    pub fn major_dim(&self) -> u32 {
        match self.order {
            MajorOrder::Row => self.rows,
            MajorOrder::Col => self.cols,
        }
    }

    /// Length of each fiber's coordinate space (columns for CSR).
    pub fn minor_dim(&self) -> u32 {
        match self.order {
            MajorOrder::Row => self.cols,
            MajorOrder::Col => self.rows,
        }
    }

    /// Number of stored non-zero elements.
    pub fn nnz(&self) -> usize {
        self.coords.len()
    }

    /// Fraction of stored entries, `nnz / (rows * cols)`.
    pub fn density(&self) -> f64 {
        if self.rows == 0 || self.cols == 0 {
            return 0.0;
        }
        self.nnz() as f64 / (self.rows as f64 * self.cols as f64)
    }

    /// Sparsity as a percentage, `100 * (1 - density)` — the paper's metric.
    pub fn sparsity_percent(&self) -> f64 {
        100.0 * (1.0 - self.density())
    }

    /// Zero-copy view of fiber `major`.
    ///
    /// # Panics
    ///
    /// Panics if `major >= self.major_dim()`.
    pub fn fiber(&self, major: u32) -> FiberView<'_> {
        self.view().fiber(major)
    }

    /// Length (nnz) of fiber `major` without materializing a view.
    pub fn fiber_len(&self, major: u32) -> usize {
        let i = major as usize;
        self.ptr[i + 1] - self.ptr[i]
    }

    /// Iterator over `(major_index, fiber_view)` pairs.
    pub fn fibers(&self) -> FiberIter<'_> {
        self.view().fibers()
    }

    /// The raw pointer vector (`major_dim + 1` monotone offsets).
    pub fn ptr(&self) -> &[usize] {
        &self.ptr
    }

    /// All stored coordinates in fiber-major order.
    pub fn coords(&self) -> &[u32] {
        &self.coords
    }

    /// All stored values, parallel to [`CompressedMatrix::coords`].
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Iterates over all stored elements in fiber-major order.
    pub fn elements(&self) -> ElementIter<'_> {
        FiberView::from_parts_unchecked(&self.coords, &self.values).iter()
    }

    /// Borrowed, zero-copy view of the whole matrix — the unit the engine
    /// executes on (operands are never cloned into the engine).
    pub fn view(&self) -> MatrixView<'_> {
        MatrixView {
            rows: self.rows,
            cols: self.cols,
            order: self.order,
            ptr: &self.ptr,
            coords: &self.coords,
            values: &self.values,
        }
    }

    /// Value at `(row, col)`, or `0.0` if not stored.
    pub fn get(&self, row: u32, col: u32) -> Value {
        let (major, minor) = match self.order {
            MajorOrder::Row => (row, col),
            MajorOrder::Col => (col, row),
        };
        if major >= self.major_dim() {
            return 0.0;
        }
        self.fiber(major).get(minor).unwrap_or(0.0)
    }

    /// Compressed footprint in bytes: element data plus the pointer vector.
    ///
    /// Elements are charged [`ELEMENT_BYTES`] each (32-bit value+coordinate
    /// word, Table 5); pointers 4 bytes each. This is the `cs{A,B,C}` metric
    /// of Tables 2 and 6.
    pub fn compressed_size_bytes(&self) -> u64 {
        self.nnz() as u64 * ELEMENT_BYTES + (self.major_dim() as u64 + 1) * 4
    }

    /// Reinterprets this matrix as its transpose, free of data movement.
    ///
    /// A CSR matrix of `A` is bit-identical to a CSC matrix of `Aᵀ`; only the
    /// dimension labels and the order tag change. This is the trick that lets
    /// one engine run N-stationary dataflows by "exchanging matrices A and B"
    /// (paper §3.2). The owned form clones the arrays; the engine uses the
    /// allocation-free [`MatrixView::reinterpret_transposed`] instead.
    #[must_use]
    pub fn reinterpret_transposed(&self) -> Self {
        Self {
            rows: self.cols,
            cols: self.rows,
            order: self.order.flipped(),
            ptr: self.ptr.clone(),
            coords: self.coords.clone(),
            values: self.values.clone(),
            transpose_plan: OnceLock::new(),
        }
    }

    /// Explicitly converts to the other major order (CSR ↔ CSC).
    ///
    /// This is the *expensive* operation the paper's inter-layer dataflow
    /// mechanism avoids (Table 4 marks transitions requiring it as "EC").
    /// The accelerator never performs it in hardware; it exists so tests and
    /// the workload suite can prepare operands in the format each dataflow
    /// expects.
    #[must_use]
    pub fn converted(&self, target: MajorOrder) -> Self {
        if target == self.order {
            return self.clone();
        }
        // Two-pass counting sort over the SoA arrays, split into a
        // structure-only plan (counts, prefix sums, per-element destinations)
        // and its application (two scatter passes, one output array each so a
        // single random-write stream is live at a time). The plan depends
        // only on `coords`, so it is memoized: the mapper oracle and the
        // workload suite convert the same operands once per candidate
        // dataflow, and every conversion after the first skips straight to
        // the scatters.
        let plan = self.transpose_plan.get_or_init(|| self.transpose_plan());
        let (coords, values) = apply_transpose_plan(plan, &self.ptr, &self.values);
        // Source fibers are scanned in increasing major order, so each output
        // fiber receives its coordinates already sorted.
        Self {
            rows: self.rows,
            cols: self.cols,
            order: target,
            ptr: plan.ptr.clone(),
            coords,
            values,
            transpose_plan: OnceLock::new(),
        }
    }

    /// Builds the structural half of a conversion: the counting-sort prefix
    /// (the converted pointer vector) and each element's destination slot.
    fn transpose_plan(&self) -> TransposePlan {
        build_transpose_plan(self.minor_dim() as usize, &self.coords)
    }

    /// Structural validation: pointer monotonicity, bounds, fiber ordering.
    ///
    /// # Errors
    ///
    /// Returns the first defect found as a [`FormatError`].
    pub fn validate(&self) -> Result<()> {
        if self.ptr.len() != self.major_dim() as usize + 1 {
            return Err(FormatError::MalformedPointers {
                detail: format!(
                    "pointer vector has {} entries, expected {}",
                    self.ptr.len(),
                    self.major_dim() + 1
                ),
            });
        }
        if self.coords.len() != self.values.len() {
            return Err(FormatError::MalformedPointers {
                detail: format!(
                    "coordinate array ({}) and value array ({}) disagree",
                    self.coords.len(),
                    self.values.len()
                ),
            });
        }
        if self.ptr[0] != 0 || *self.ptr.last().unwrap() != self.coords.len() {
            return Err(FormatError::MalformedPointers {
                detail: "pointer vector does not span the element data".into(),
            });
        }
        for w in self.ptr.windows(2) {
            if w[0] > w[1] {
                return Err(FormatError::MalformedPointers {
                    detail: "pointer vector is not monotone".into(),
                });
            }
        }
        for major in 0..self.major_dim() {
            let fiber = &self.coords[self.ptr[major as usize]..self.ptr[major as usize + 1]];
            for w in fiber.windows(2) {
                if w[0] >= w[1] {
                    return Err(FormatError::UnsortedFiber { fiber: major });
                }
            }
            for &c in fiber {
                if c >= self.minor_dim() {
                    let (row, col) = match self.order {
                        MajorOrder::Row => (major, c),
                        MajorOrder::Col => (c, major),
                    };
                    return Err(FormatError::CoordOutOfBounds {
                        row,
                        col,
                        rows: self.rows,
                        cols: self.cols,
                    });
                }
            }
        }
        Ok(())
    }

    /// Compares against `other` element-wise with absolute tolerance `tol`,
    /// regardless of either matrix's major order.
    pub fn approx_eq(&self, other: &Self, tol: Value) -> bool {
        if self.rows != other.rows || self.cols != other.cols {
            return false;
        }
        let canonical = |m: &Self| -> Vec<(u32, u32, Value)> {
            let mut v: Vec<(u32, u32, Value)> = m
                .fibers()
                .flat_map(|(major, fiber)| {
                    fiber
                        .iter()
                        .map(move |e| match m.order {
                            MajorOrder::Row => (major, e.coord, e.value),
                            MajorOrder::Col => (e.coord, major, e.value),
                        })
                        .collect::<Vec<_>>()
                })
                .filter(|&(_, _, val)| val != 0.0)
                .collect();
            v.sort_by_key(|&(r, c, _)| (r, c));
            v
        };
        let (a, b) = (canonical(self), canonical(other));
        if a.len() != b.len() {
            return false;
        }
        a.iter()
            .zip(&b)
            .all(|(&(ar, ac, av), &(br, bc, bv))| ar == br && ac == bc && (av - bv).abs() <= tol)
    }
}

/// A borrowed, zero-copy view of a [`CompressedMatrix`] — dimensions, order
/// tag and data slices.
///
/// The engine executes entirely on views: a format-matching operand is
/// borrowed as-is, and the N-stationary duality ("exchange matrices A and
/// B", §3.2) is a relabeling via [`MatrixView::reinterpret_transposed`] that
/// moves no data at all.
#[derive(Debug, Clone, Copy)]
pub struct MatrixView<'a> {
    rows: u32,
    cols: u32,
    order: MajorOrder,
    ptr: &'a [usize],
    coords: &'a [u32],
    values: &'a [Value],
}

impl<'a> MatrixView<'a> {
    /// Number of rows.
    pub fn rows(&self) -> u32 {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> u32 {
        self.cols
    }

    /// The compression order (CSR or CSC).
    pub fn order(&self) -> MajorOrder {
        self.order
    }

    /// Number of fibers (rows for CSR, columns for CSC).
    pub fn major_dim(&self) -> u32 {
        match self.order {
            MajorOrder::Row => self.rows,
            MajorOrder::Col => self.cols,
        }
    }

    /// Length of each fiber's coordinate space (columns for CSR).
    pub fn minor_dim(&self) -> u32 {
        match self.order {
            MajorOrder::Row => self.cols,
            MajorOrder::Col => self.rows,
        }
    }

    /// Number of stored non-zero elements.
    pub fn nnz(&self) -> usize {
        self.coords.len()
    }

    /// The raw pointer vector (`major_dim + 1` monotone offsets).
    pub fn ptr(&self) -> &'a [usize] {
        self.ptr
    }

    /// All stored coordinates in fiber-major order.
    pub fn coords(&self) -> &'a [u32] {
        self.coords
    }

    /// All stored values, parallel to [`MatrixView::coords`].
    pub fn values(&self) -> &'a [Value] {
        self.values
    }

    /// Zero-copy view of fiber `major`.
    ///
    /// # Panics
    ///
    /// Panics if `major >= self.major_dim()`.
    pub fn fiber(&self, major: u32) -> FiberView<'a> {
        let i = major as usize;
        let (start, end) = (self.ptr[i], self.ptr[i + 1]);
        FiberView::from_parts_unchecked(&self.coords[start..end], &self.values[start..end])
    }

    /// Length (nnz) of fiber `major` without materializing a view.
    pub fn fiber_len(&self, major: u32) -> usize {
        let i = major as usize;
        self.ptr[i + 1] - self.ptr[i]
    }

    /// Iterator over `(major_index, fiber_view)` pairs.
    pub fn fibers(&self) -> FiberIter<'a> {
        FiberIter {
            matrix: *self,
            next: 0,
        }
    }

    /// Reinterprets the view as its transpose: dimension labels swap, the
    /// order tag flips, and no data moves.
    #[must_use]
    pub fn reinterpret_transposed(&self) -> MatrixView<'a> {
        MatrixView {
            rows: self.cols,
            cols: self.rows,
            order: self.order.flipped(),
            ptr: self.ptr,
            coords: self.coords,
            values: self.values,
        }
    }

    /// Copies the view into an owned matrix in `target` order, converting
    /// with the same two-pass counting sort as
    /// [`CompressedMatrix::converted`] but without materializing an
    /// intermediate copy first. No plan is memoized — views are transient;
    /// convert through the owning matrix to benefit from the cache.
    #[must_use]
    pub fn converted(&self, target: MajorOrder) -> CompressedMatrix {
        if target == self.order {
            return self.to_matrix();
        }
        let plan = build_transpose_plan(self.minor_dim() as usize, self.coords);
        let (coords, values) = apply_transpose_plan(&plan, self.ptr, self.values);
        CompressedMatrix {
            rows: self.rows,
            cols: self.cols,
            order: target,
            ptr: plan.ptr,
            coords,
            values,
            transpose_plan: OnceLock::new(),
        }
    }

    /// Copies the view into an owned matrix.
    pub fn to_matrix(&self) -> CompressedMatrix {
        CompressedMatrix {
            rows: self.rows,
            cols: self.cols,
            order: self.order,
            ptr: self.ptr.to_vec(),
            coords: self.coords.to_vec(),
            values: self.values.to_vec(),
            transpose_plan: OnceLock::new(),
        }
    }
}

/// Iterator over the fibers of a [`CompressedMatrix`] or [`MatrixView`].
///
/// Produced by [`CompressedMatrix::fibers`] / [`MatrixView::fibers`].
#[derive(Debug, Clone)]
pub struct FiberIter<'a> {
    matrix: MatrixView<'a>,
    next: u32,
}

impl<'a> Iterator for FiberIter<'a> {
    type Item = (u32, FiberView<'a>);

    fn next(&mut self) -> Option<Self::Item> {
        if self.next >= self.matrix.major_dim() {
            return None;
        }
        let major = self.next;
        self.next += 1;
        Some((major, self.matrix.fiber(major)))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = (self.matrix.major_dim() - self.next) as usize;
        (left, Some(left))
    }
}

impl ExactSizeIterator for FiberIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Element;

    fn sample_csr() -> CompressedMatrix {
        // [[0 2 0]
        //  [1 0 3]]
        CompressedMatrix::from_triplets(
            2,
            3,
            &[(0, 1, 2.0), (1, 0, 1.0), (1, 2, 3.0)],
            MajorOrder::Row,
        )
        .unwrap()
    }

    #[test]
    fn from_triplets_sorts_within_fibers() {
        let m = CompressedMatrix::from_triplets(
            2,
            3,
            &[(1, 2, 3.0), (1, 0, 1.0), (0, 1, 2.0)],
            MajorOrder::Row,
        )
        .unwrap();
        assert_eq!(m, sample_csr());
    }

    #[test]
    fn from_triplets_rejects_out_of_bounds() {
        let err =
            CompressedMatrix::from_triplets(2, 2, &[(2, 0, 1.0)], MajorOrder::Row).unwrap_err();
        assert!(matches!(err, FormatError::CoordOutOfBounds { row: 2, .. }));
    }

    #[test]
    fn from_triplets_rejects_duplicates() {
        let err =
            CompressedMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (0, 0, 2.0)], MajorOrder::Row)
                .unwrap_err();
        assert!(matches!(
            err,
            FormatError::DuplicateCoord { row: 0, col: 0 }
        ));
    }

    #[test]
    fn csc_fibers_are_columns() {
        let m = CompressedMatrix::from_triplets(
            2,
            3,
            &[(0, 1, 2.0), (1, 0, 1.0), (1, 2, 3.0)],
            MajorOrder::Col,
        )
        .unwrap();
        assert_eq!(m.major_dim(), 3);
        assert_eq!(
            m.fiber(0).to_fiber().into_inner(),
            vec![Element::new(1, 1.0)]
        );
        assert_eq!(
            m.fiber(1).to_fiber().into_inner(),
            vec![Element::new(0, 2.0)]
        );
        assert_eq!(
            m.fiber(2).to_fiber().into_inner(),
            vec![Element::new(1, 3.0)]
        );
    }

    #[test]
    fn get_works_in_both_orders() {
        let csr = sample_csr();
        let csc = csr.converted(MajorOrder::Col);
        for r in 0..2 {
            for c in 0..3 {
                assert_eq!(csr.get(r, c), csc.get(r, c), "mismatch at ({r},{c})");
            }
        }
        assert_eq!(csr.get(1, 2), 3.0);
        assert_eq!(csr.get(0, 0), 0.0);
    }

    #[test]
    fn conversion_roundtrip_preserves_matrix() {
        let csr = sample_csr();
        let back = csr.converted(MajorOrder::Col).converted(MajorOrder::Row);
        assert_eq!(csr, back);
    }

    #[test]
    fn converted_to_same_order_is_identity() {
        let csr = sample_csr();
        assert_eq!(csr.converted(MajorOrder::Row), csr);
    }

    #[test]
    fn reinterpret_transposed_swaps_dims_without_moving_data() {
        let csr = sample_csr();
        let t = csr.reinterpret_transposed();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 2);
        assert_eq!(t.order(), MajorOrder::Col);
        assert_eq!(t.coords(), csr.coords());
        assert_eq!(t.values(), csr.values());
        // A[1][2] == Aᵀ[2][1]
        assert_eq!(t.get(2, 1), 3.0);
    }

    #[test]
    fn view_transpose_moves_no_data() {
        let csr = sample_csr();
        let v = csr.view().reinterpret_transposed();
        assert_eq!(v.rows(), 3);
        assert_eq!(v.cols(), 2);
        assert_eq!(v.order(), MajorOrder::Col);
        assert!(std::ptr::eq(v.coords(), csr.coords()));
        assert!(std::ptr::eq(v.values(), csr.values()));
        assert_eq!(v.to_matrix(), csr.reinterpret_transposed());
    }

    #[test]
    fn zero_matrix_has_no_elements() {
        let z = CompressedMatrix::zero(4, 5, MajorOrder::Col);
        assert_eq!(z.nnz(), 0);
        assert_eq!(z.major_dim(), 5);
        z.validate().unwrap();
    }

    #[test]
    fn density_and_sparsity() {
        let m = sample_csr();
        assert!((m.density() - 0.5).abs() < 1e-9);
        assert!((m.sparsity_percent() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn compressed_size_counts_elements_and_pointers() {
        let m = sample_csr();
        assert_eq!(m.compressed_size_bytes(), 3 * 4 + 3 * 4);
    }

    #[test]
    fn fibers_iterator_visits_all_majors() {
        let m = sample_csr();
        let lens: Vec<usize> = m.fibers().map(|(_, f)| f.len()).collect();
        assert_eq!(lens, vec![1, 2]);
        assert_eq!(m.fibers().len(), 2);
    }

    #[test]
    fn elements_iterates_in_fiber_major_order() {
        let m = sample_csr();
        let elems: Vec<Element> = m.elements().collect();
        assert_eq!(
            elems,
            vec![
                Element::new(1, 2.0),
                Element::new(0, 1.0),
                Element::new(2, 3.0)
            ]
        );
    }

    #[test]
    fn from_fibers_matches_from_triplets() {
        let m = CompressedMatrix::from_fibers(
            2,
            3,
            MajorOrder::Row,
            vec![
                Fiber::from_sorted(vec![Element::new(1, 2.0)]),
                Fiber::from_sorted(vec![Element::new(0, 1.0), Element::new(2, 3.0)]),
            ],
        )
        .unwrap();
        assert_eq!(m, sample_csr());
    }

    #[test]
    fn from_fibers_rejects_wrong_count() {
        let err =
            CompressedMatrix::from_fibers(2, 3, MajorOrder::Row, vec![Fiber::new()]).unwrap_err();
        assert!(matches!(err, FormatError::MalformedPointers { .. }));
    }

    #[test]
    fn from_fibers_rejects_out_of_range_coord() {
        let err = CompressedMatrix::from_fibers(
            2,
            3,
            MajorOrder::Row,
            vec![Fiber::from_sorted(vec![Element::new(3, 1.0)]), Fiber::new()],
        )
        .unwrap_err();
        assert!(matches!(err, FormatError::CoordOutOfBounds { .. }));
    }

    #[test]
    fn validate_accepts_well_formed() {
        sample_csr().validate().unwrap();
    }

    #[test]
    fn approx_eq_across_orders() {
        let csr = sample_csr();
        let csc = csr.converted(MajorOrder::Col);
        assert!(csr.approx_eq(&csc, 1e-6));
    }

    #[test]
    fn approx_eq_detects_value_difference() {
        let a = sample_csr();
        let b = CompressedMatrix::from_triplets(
            2,
            3,
            &[(0, 1, 2.5), (1, 0, 1.0), (1, 2, 3.0)],
            MajorOrder::Row,
        )
        .unwrap();
        assert!(!a.approx_eq(&b, 0.1));
        assert!(a.approx_eq(&b, 0.6));
    }

    #[test]
    fn major_order_flip_and_names() {
        assert_eq!(MajorOrder::Row.flipped(), MajorOrder::Col);
        assert_eq!(MajorOrder::Col.flipped(), MajorOrder::Row);
        assert_eq!(MajorOrder::Row.format_name(), "CSR");
        assert_eq!(MajorOrder::Col.format_name(), "CSC");
    }
}
