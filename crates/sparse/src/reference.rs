//! Software reference implementations of the three SpMSpM dataflows.
//!
//! These are the golden models every accelerator run is checked against, and
//! the kernel behind the CPU baseline. Each mirrors the loop nest of Fig. 2:
//!
//! * [`inner_product`] — MNK order, co-iteration innermost, A·CSR × B·CSC.
//! * [`outer_product`] — KMN order, co-iteration outermost, A·CSC × B·CSR.
//! * [`gustavson`] — MKN order, co-iteration in the middle, A·CSR × B·CSR.
//!
//! All return C in CSR (the M-stationary output format of Table 3).

use crate::{
    merge, CompressedMatrix, Element, Fiber, FormatError, MajorOrder, MatrixIndex, Result,
};

fn check_dims(a: &CompressedMatrix, b: &CompressedMatrix) -> Result<()> {
    if a.cols() != b.rows() {
        return Err(FormatError::DimensionMismatch {
            left_cols: a.cols(),
            right_rows: b.rows(),
        });
    }
    Ok(())
}

/// Inner-Product (M) SpMSpM: for each `(m, n)` pair, a sparse dot product.
///
/// Expects `a` in CSR and `b` in CSC (Table 3). This is the algorithm the
/// SIGMA-like accelerator executes: full sums are produced one at a time and
/// no partial-sum merging is ever required, at the cost of streaming the
/// whole of B once per stationary tile.
///
/// # Errors
///
/// Returns [`FormatError::DimensionMismatch`] on inner-dimension mismatch and
/// [`FormatError::WrongMajorOrder`] when operands are not CSR × CSC.
pub fn inner_product(a: &CompressedMatrix, b: &CompressedMatrix) -> Result<CompressedMatrix> {
    check_dims(a, b)?;
    if a.order() != MajorOrder::Row {
        return Err(FormatError::WrongMajorOrder {
            expected: MajorOrder::Row,
            actual: a.order(),
        });
    }
    if b.order() != MajorOrder::Col {
        return Err(FormatError::WrongMajorOrder {
            expected: MajorOrder::Col,
            actual: b.order(),
        });
    }
    // Index B's column fibers once; every (m, n) dot product then probes the
    // index instead of co-iterating both fibers. Matches are visited in
    // ascending k either way, so sums stay bit-identical to `FiberView::dot`.
    let b_index = MatrixIndex::build(b.view());
    let mut fibers = Vec::with_capacity(a.rows() as usize);
    for (_, a_fiber) in a.fibers() {
        let mut out = Fiber::new();
        if !a_fiber.is_empty() {
            for (n, b_fiber) in b.fibers() {
                let (v, work) = a_fiber.dot_probe(b_fiber, b_index.fiber(n));
                if work > 0 && v != 0.0 {
                    out.push(Element::new(n, v));
                }
            }
        }
        fibers.push(out);
    }
    CompressedMatrix::from_fibers(a.rows(), b.cols(), MajorOrder::Row, fibers)
}

/// Outer-Product (M) SpMSpM: per `k`, the outer product of A's column `k`
/// and B's row `k`; partial matrices are merged at the end.
///
/// Expects `a` in CSC and `b` in CSR (Table 3). This is the SpArch-like
/// algorithm: every input is read once, but `O(products)` partial sums are
/// produced and must be merged.
///
/// # Errors
///
/// Returns [`FormatError::DimensionMismatch`] on inner-dimension mismatch and
/// [`FormatError::WrongMajorOrder`] when operands are not CSC × CSR.
pub fn outer_product(a: &CompressedMatrix, b: &CompressedMatrix) -> Result<CompressedMatrix> {
    check_dims(a, b)?;
    if a.order() != MajorOrder::Col {
        return Err(FormatError::WrongMajorOrder {
            expected: MajorOrder::Col,
            actual: a.order(),
        });
    }
    if b.order() != MajorOrder::Row {
        return Err(FormatError::WrongMajorOrder {
            expected: MajorOrder::Row,
            actual: b.order(),
        });
    }
    // Per-row psum fiber lists, one fiber per contributing k.
    let mut psums: Vec<Vec<Fiber>> = vec![Vec::new(); a.rows() as usize];
    for (k, a_col) in a.fibers() {
        let b_row = b.fiber(k);
        if b_row.is_empty() {
            continue;
        }
        for ae in a_col.iter() {
            psums[ae.coord as usize].push(b_row.to_fiber().scaled(ae.value));
        }
    }
    let mut fibers = Vec::with_capacity(a.rows() as usize);
    for row_psums in &psums {
        let views: Vec<_> = row_psums.iter().map(Fiber::as_view).collect();
        let (merged, _) = merge::merge_accumulate(&views);
        fibers.push(merged);
    }
    CompressedMatrix::from_fibers(a.rows(), b.cols(), MajorOrder::Row, fibers)
}

/// Gustavson's (M) SpMSpM: for each row of A, linearly combine the rows of B
/// selected by that row's coordinates.
///
/// Expects both operands in CSR (Table 3). This is the GAMMA-like algorithm
/// and also the kernel of the CPU MKL baseline; merging is confined to the
/// current output fiber.
///
/// # Errors
///
/// Returns [`FormatError::DimensionMismatch`] on inner-dimension mismatch and
/// [`FormatError::WrongMajorOrder`] when operands are not CSR × CSR.
pub fn gustavson(a: &CompressedMatrix, b: &CompressedMatrix) -> Result<CompressedMatrix> {
    check_dims(a, b)?;
    if a.order() != MajorOrder::Row {
        return Err(FormatError::WrongMajorOrder {
            expected: MajorOrder::Row,
            actual: a.order(),
        });
    }
    if b.order() != MajorOrder::Row {
        return Err(FormatError::WrongMajorOrder {
            expected: MajorOrder::Row,
            actual: b.order(),
        });
    }
    let mut fibers = Vec::with_capacity(a.rows() as usize);
    let mut scaled: Vec<Fiber> = Vec::new();
    for (_, a_row) in a.fibers() {
        scaled.clear();
        for ae in a_row.iter() {
            let b_row = b.fiber(ae.coord);
            if !b_row.is_empty() {
                scaled.push(b_row.to_fiber().scaled(ae.value));
            }
        }
        let views: Vec<_> = scaled.iter().map(Fiber::as_view).collect();
        let (merged, _) = merge::merge_accumulate(&views);
        fibers.push(merged);
    }
    CompressedMatrix::from_fibers(a.rows(), b.cols(), MajorOrder::Row, fibers)
}

/// Runs `a × b` with whichever reference kernel matches the given formats,
/// converting operands as needed, and returns C in CSR.
///
/// Convenience for tests and examples that do not care about dataflow.
///
/// # Errors
///
/// Returns [`FormatError::DimensionMismatch`] on inner-dimension mismatch.
pub fn spgemm(a: &CompressedMatrix, b: &CompressedMatrix) -> Result<CompressedMatrix> {
    check_dims(a, b)?;
    let a_csr = a.converted(MajorOrder::Row);
    let b_csr = b.converted(MajorOrder::Row);
    gustavson(&a_csr, &b_csr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{gen, DenseMatrix};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn golden(a: &CompressedMatrix, b: &CompressedMatrix) -> DenseMatrix {
        DenseMatrix::from_compressed(a)
            .matmul(&DenseMatrix::from_compressed(b))
            .unwrap()
    }

    fn random_pair(
        m: u32,
        k: u32,
        n: u32,
        da: f64,
        db: f64,
        seed: u64,
    ) -> (CompressedMatrix, CompressedMatrix) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let a = gen::random(m, k, da, MajorOrder::Row, &mut rng);
        let b = gen::random(k, n, db, MajorOrder::Row, &mut rng);
        (a, b)
    }

    #[test]
    fn all_three_dataflows_agree_with_dense() {
        for seed in 0..5 {
            let (a, b) = random_pair(17, 23, 19, 0.3, 0.25, seed);
            let want = golden(&a, &b);
            let ip = inner_product(&a, &b.converted(MajorOrder::Col)).unwrap();
            let op = outer_product(&a.converted(MajorOrder::Col), &b).unwrap();
            let gu = gustavson(&a, &b).unwrap();
            for c in [ip, op, gu] {
                let got = DenseMatrix::from_compressed(&c);
                assert!(
                    got.approx_eq(&want, 1e-3),
                    "seed {seed}: max diff {}",
                    got.max_abs_diff(&want)
                );
            }
        }
    }

    #[test]
    fn empty_times_anything_is_empty() {
        let a = CompressedMatrix::zero(4, 5, MajorOrder::Row);
        let b = gen::random(
            5,
            6,
            0.5,
            MajorOrder::Row,
            &mut ChaCha8Rng::seed_from_u64(1),
        );
        let c = gustavson(&a, &b).unwrap();
        assert_eq!(c.nnz(), 0);
        assert_eq!(c.rows(), 4);
        assert_eq!(c.cols(), 6);
    }

    #[test]
    fn identity_is_neutral() {
        let b = gen::random(
            6,
            7,
            0.5,
            MajorOrder::Row,
            &mut ChaCha8Rng::seed_from_u64(2),
        );
        let i = gen::diagonal(6, 1.0, MajorOrder::Row);
        let c = gustavson(&i, &b).unwrap();
        assert!(c.approx_eq(&b, 1e-6));
    }

    #[test]
    fn dimension_mismatch_is_rejected_by_all() {
        let a = CompressedMatrix::zero(2, 3, MajorOrder::Row);
        let b = CompressedMatrix::zero(4, 2, MajorOrder::Col);
        assert!(matches!(
            inner_product(&a, &b),
            Err(FormatError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            outer_product(&a.converted(MajorOrder::Col), &b.converted(MajorOrder::Row)),
            Err(FormatError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            gustavson(&a, &b.converted(MajorOrder::Row)),
            Err(FormatError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn wrong_order_is_rejected() {
        let a = CompressedMatrix::zero(2, 3, MajorOrder::Col);
        let b = CompressedMatrix::zero(3, 2, MajorOrder::Col);
        assert!(matches!(
            inner_product(&a, &b),
            Err(FormatError::WrongMajorOrder {
                expected: MajorOrder::Row,
                ..
            })
        ));
        assert!(matches!(
            gustavson(&a, &b),
            Err(FormatError::WrongMajorOrder { .. })
        ));
        let a_csr = a.converted(MajorOrder::Row);
        assert!(matches!(
            outer_product(&a_csr, &b),
            Err(FormatError::WrongMajorOrder {
                expected: MajorOrder::Col,
                ..
            })
        ));
    }

    #[test]
    fn spgemm_convenience_converts_formats() {
        let (a, b) = random_pair(9, 11, 8, 0.4, 0.4, 7);
        let c1 = spgemm(&a, &b).unwrap();
        let c2 = spgemm(&a.converted(MajorOrder::Col), &b.converted(MajorOrder::Col)).unwrap();
        assert!(c1.approx_eq(&c2, 1e-4));
    }

    #[test]
    fn very_sparse_inputs() {
        let (a, b) = random_pair(40, 40, 40, 0.01, 0.01, 3);
        let want = golden(&a, &b);
        let got = DenseMatrix::from_compressed(&gustavson(&a, &b).unwrap());
        assert!(got.approx_eq(&want, 1e-4));
    }

    #[test]
    fn fully_dense_inputs() {
        let (a, b) = random_pair(8, 8, 8, 1.0, 1.0, 4);
        let want = golden(&a, &b);
        for c in [
            inner_product(&a, &b.converted(MajorOrder::Col)).unwrap(),
            outer_product(&a.converted(MajorOrder::Col), &b).unwrap(),
            gustavson(&a, &b).unwrap(),
        ] {
            assert!(DenseMatrix::from_compressed(&c).approx_eq(&want, 1e-3));
        }
    }

    #[test]
    fn tall_skinny_and_short_fat() {
        for (m, k, n) in [(64, 2, 3), (2, 64, 3), (3, 2, 64)] {
            let (a, b) = random_pair(m, k, n, 0.5, 0.5, 9);
            let want = golden(&a, &b);
            let got = DenseMatrix::from_compressed(&gustavson(&a, &b).unwrap());
            assert!(got.approx_eq(&want, 1e-3), "dims ({m},{k},{n})");
        }
    }
}
