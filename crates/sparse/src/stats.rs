//! Workload statistics: matrix shape metrics and SpMSpM work estimates.
//!
//! These drive both the workload tables (Tables 2 and 6) and the mapper's
//! heuristics: the winning dataflow is a function of dimensions, sparsity
//! degree and compressed sizes relative to on-chip capacity.

use crate::{CompressedMatrix, MajorOrder, MatrixView};
use serde::{Deserialize, Serialize};

/// Shape/sparsity summary of one matrix (the `sp`/`cs` columns of Table 6).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MatrixStats {
    /// Number of rows.
    pub rows: u32,
    /// Number of columns.
    pub cols: u32,
    /// Stored non-zeros.
    pub nnz: usize,
    /// Sparsity in percent (paper convention: `100 * (1 - density)`).
    pub sparsity_percent: f64,
    /// Compressed size in bytes (elements + pointer vector).
    pub compressed_bytes: u64,
    /// Mean fiber occupancy.
    pub avg_fiber_len: f64,
    /// Longest fiber.
    pub max_fiber_len: usize,
    /// Number of completely empty fibers.
    pub empty_fibers: u32,
}

impl MatrixStats {
    /// Computes statistics for a compressed matrix.
    pub fn of(m: &CompressedMatrix) -> Self {
        let mut max_fiber_len = 0;
        let mut empty_fibers = 0;
        for (_, f) in m.fibers() {
            max_fiber_len = max_fiber_len.max(f.len());
            if f.is_empty() {
                empty_fibers += 1;
            }
        }
        Self {
            rows: m.rows(),
            cols: m.cols(),
            nnz: m.nnz(),
            sparsity_percent: m.sparsity_percent(),
            compressed_bytes: m.compressed_size_bytes(),
            avg_fiber_len: if m.major_dim() == 0 {
                0.0
            } else {
                m.nnz() as f64 / m.major_dim() as f64
            },
            max_fiber_len,
            empty_fibers,
        }
    }

    /// Compressed size in KiB (Table 6 unit).
    pub fn compressed_kib(&self) -> f64 {
        self.compressed_bytes as f64 / 1024.0
    }

    /// Compressed size in MiB (Table 2 unit).
    pub fn compressed_mib(&self) -> f64 {
        self.compressed_bytes as f64 / (1024.0 * 1024.0)
    }
}

/// Work profile of an SpMSpM operation `A × B`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpGemmWork {
    /// Effectual scalar products: `Σ_k nnz(A[:,k]) · nnz(B[k,:])`.
    ///
    /// This is both the multiply count of OP/Gust and the partial-sum volume
    /// they must merge; IP performs the same multiplies but discovers them
    /// through intersection.
    pub products: u64,
    /// Non-zeros of A.
    pub nnz_a: u64,
    /// Non-zeros of B.
    pub nnz_b: u64,
    /// Number of `k` values where both A has a non-empty column and B a
    /// non-empty row (effectual co-iterations).
    pub effectual_k: u32,
}

impl SpGemmWork {
    /// Computes the work profile. Operands may be in either major order.
    pub fn of(a: &CompressedMatrix, b: &CompressedMatrix) -> Self {
        Self::of_views(a.view(), b.view())
    }

    /// Computes the work profile from borrowed views (the engine's
    /// allocation-free path).
    pub fn of_views(a: MatrixView<'_>, b: MatrixView<'_>) -> Self {
        let a_col_counts = major_counts(a, MajorOrder::Col);
        let b_row_counts = major_counts(b, MajorOrder::Row);
        let mut products = 0u64;
        let mut effectual_k = 0u32;
        for k in 0..a.cols().min(b.rows()) as usize {
            let (ac, br) = (a_col_counts[k] as u64, b_row_counts[k] as u64);
            if ac > 0 && br > 0 {
                effectual_k += 1;
                products += ac * br;
            }
        }
        Self {
            products,
            nnz_a: a.nnz() as u64,
            nnz_b: b.nnz() as u64,
            effectual_k,
        }
    }

    /// Ratio of products to output-relevant input volume — a rough proxy for
    /// how much merging OP-style dataflows will do.
    pub fn expansion_factor(&self) -> f64 {
        if self.nnz_a + self.nnz_b == 0 {
            0.0
        } else {
            self.products as f64 / (self.nnz_a + self.nnz_b) as f64
        }
    }
}

/// nnz per major index of `m` *as if* compressed in `order`, without
/// converting (counts only).
fn major_counts(m: MatrixView<'_>, order: MajorOrder) -> Vec<u32> {
    let dim = match order {
        MajorOrder::Row => m.rows(),
        MajorOrder::Col => m.cols(),
    } as usize;
    let mut counts = vec![0u32; dim];
    if m.order() == order {
        for (major, f) in m.fibers() {
            counts[major as usize] = f.len() as u32;
        }
    } else {
        for &c in m.coords() {
            counts[c as usize] += 1;
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn matrix_stats_basic() {
        let m = CompressedMatrix::from_triplets(
            2,
            4,
            &[(0, 0, 1.0), (0, 1, 1.0), (0, 2, 1.0)],
            MajorOrder::Row,
        )
        .unwrap();
        let s = MatrixStats::of(&m);
        assert_eq!(s.nnz, 3);
        assert_eq!(s.max_fiber_len, 3);
        assert_eq!(s.empty_fibers, 1);
        assert!((s.avg_fiber_len - 1.5).abs() < 1e-9);
        assert!((s.sparsity_percent - 62.5).abs() < 1e-9);
    }

    #[test]
    fn units_are_consistent() {
        let m = gen::diagonal(1024, 1.0, MajorOrder::Row);
        let s = MatrixStats::of(&m);
        assert!((s.compressed_kib() * 1024.0 - s.compressed_bytes as f64).abs() < 1e-9);
        assert!((s.compressed_mib() * 1024.0 - s.compressed_kib()).abs() < 1e-9);
    }

    #[test]
    fn work_products_match_manual_count() {
        // A: col0 has 2 nnz, col1 has 1; B: row0 has 3 nnz, row1 has 0.
        let a = CompressedMatrix::from_triplets(
            2,
            2,
            &[(0, 0, 1.0), (1, 0, 1.0), (0, 1, 1.0)],
            MajorOrder::Row,
        )
        .unwrap();
        let b = CompressedMatrix::from_triplets(
            2,
            3,
            &[(0, 0, 1.0), (0, 1, 1.0), (0, 2, 1.0)],
            MajorOrder::Row,
        )
        .unwrap();
        let w = SpGemmWork::of(&a, &b);
        assert_eq!(w.products, 2 * 3);
        assert_eq!(w.effectual_k, 1);
        assert_eq!(w.nnz_a, 3);
        assert_eq!(w.nnz_b, 3);
    }

    #[test]
    fn work_is_order_independent() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let a = gen::random(20, 30, 0.2, MajorOrder::Row, &mut rng);
        let b = gen::random(30, 10, 0.3, MajorOrder::Row, &mut rng);
        let w1 = SpGemmWork::of(&a, &b);
        let w2 = SpGemmWork::of(&a.converted(MajorOrder::Col), &b.converted(MajorOrder::Col));
        assert_eq!(w1, w2);
    }

    #[test]
    fn expansion_factor_zero_for_empty() {
        let a = CompressedMatrix::zero(3, 3, MajorOrder::Row);
        let w = SpGemmWork::of(&a, &a);
        assert_eq!(w.expansion_factor(), 0.0);
    }

    #[test]
    fn products_equal_gustavson_scaled_fiber_volume() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let a = gen::random(15, 12, 0.3, MajorOrder::Row, &mut rng);
        let b = gen::random(12, 18, 0.4, MajorOrder::Row, &mut rng);
        let w = SpGemmWork::of(&a, &b);
        let mut manual = 0u64;
        for (_, a_row) in a.fibers() {
            for e in a_row.iter() {
                manual += b.fiber_len(e.coord) as u64;
            }
        }
        assert_eq!(w.products, manual);
    }
}
