//! Tiered per-row psum accumulators for the merge-bound dataflows.
//!
//! The Outer-Product and Gustavson phase loops produce, for every output
//! row, a set of coordinate-sorted scaled fibers that must be summed into
//! one fiber. The merger-reduction network does this with a k-way merge —
//! and the simulator charges exactly that cost — but *software* does not
//! have to replay the comparator tree: every psum is coordinate-addressable,
//! so a row-local accumulator can scatter elements in arrival order and
//! read the merged fiber back out in one sorted sweep. This is the output
//! buffering that keeps merge bandwidth off the critical path in streaming
//! designs like Sextans and dense/sparse hybrids like FlexiSAGA.
//!
//! [`RowAccum`] picks a tier per row from the shape of its output span,
//! mirroring the span/nnz heuristics of the [`index`](crate::index) tiers:
//!
//! * **Dense** — the span is tight enough that a value slot per coordinate
//!   is affordable: scatters are one indexed add, and the drain compacts
//!   64-slot value windows under the presence bitmap with SIMD
//!   compress-stores ([`simd::compress_word`]).
//! * **Paged** — medium spans where only the one-bit-per-coordinate bitmap
//!   is affordable: value storage is allocated in 64-slot pages on first
//!   touch of a bitmap word, and the drain is a bitmap-directed gather.
//! * **Runs** — wide, sparse spans: incoming fibers are kept as sorted runs
//!   and k-way merged on overflow and on drain (prefix merges preserve the
//!   left-to-right accumulation order, so collapsing early never changes a
//!   bit of the result).
//!
//! Every tier accumulates a coordinate's values in exactly the order the
//! sources arrive — the first value is *stored*, later ones are *added* —
//! which is the tie-break order of [`merge::merge_accumulate`]. Scattering
//! fibers in ascending-k order therefore reproduces the k-way merge of the
//! k-tagged psum fibers bit for bit, including `-0.0` and other
//! non-associativity hazards.

use crate::{merge, Fiber, FiberView, Value};
use serde::{Deserialize, Serialize};

/// Tier-selection thresholds for [`RowAccum`], exposed so the engine's
/// calibration (ROADMAP item (b)) can tune them without code edits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AccumConfig {
    /// Dense tier when `span <= nnz_hint * dense_span_per_elem`: each
    /// expected element justifies this many 4-byte value slots.
    pub dense_span_per_elem: u64,
    /// Absolute span cap for the dense tier, bounding the value array.
    pub dense_max_span: u64,
    /// Paged tier when `span <= nnz_hint * paged_bits_per_elem`: each
    /// expected element justifies this many presence-bitmap bits (the
    /// analogue of [`index::BITS_PER_ELEMENT`](crate::index::BITS_PER_ELEMENT)).
    pub paged_bits_per_elem: u64,
    /// Absolute span cap for the paged tier, bounding the bitmap.
    pub paged_max_span: u64,
    /// Runs tier: collapse the run list with one k-way merge whenever it
    /// grows to this many runs.
    pub runs_merge_limit: usize,
}

impl AccumConfig {
    /// Default for [`AccumConfig::dense_span_per_elem`].
    ///
    /// Derived from the `threshold_probe/{dense,paged}_accum` sweep
    /// (16×256 elements scattered over spans of 2–512 coordinates per
    /// element): the dense tier is faster at *every* measured ratio —
    /// 1.2× at span/nnz = 2 widening to ~1.7× from 32 up — because both
    /// tiers walk the same presence bitmap on drain and paged adds a page
    /// indirection per scatter. The gate is therefore a memory-footprint
    /// knob, not a speed crossover: 32 bounds the dense value array to
    /// 128 bytes per expected element (the reusable-workspace pools
    /// amortize the allocation), and [`AccumConfig::dense_max_span`]
    /// still caps the absolute span. (Previous hand-tuned value: 4.)
    ///
    /// Re-derived on the SIMD build (the dense drain's run discovery and
    /// the paged gather are both vectorized now): dense still wins at
    /// every measured ratio — the SIMD drain widens its lead at wide
    /// sparse spans (`simd_kernels/drain/dense` ~1.4×) while the paged
    /// tier's word-gather path is compare-bound, not compaction-bound —
    /// so the gate remains the same footprint knob at 32.
    pub const DEFAULT_DENSE_SPAN_PER_ELEM: u64 = 32;
    /// Default for [`AccumConfig::dense_max_span`].
    pub const DEFAULT_DENSE_MAX_SPAN: u64 = 1 << 22;
    /// Default for [`AccumConfig::paged_bits_per_elem`].
    pub const DEFAULT_PAGED_BITS_PER_ELEM: u64 = 64;
    /// Default for [`AccumConfig::paged_max_span`].
    pub const DEFAULT_PAGED_MAX_SPAN: u64 = 1 << 28;
    /// Default for [`AccumConfig::runs_merge_limit`].
    pub const DEFAULT_RUNS_MERGE_LIMIT: usize = 64;
}

impl Default for AccumConfig {
    fn default() -> Self {
        Self {
            dense_span_per_elem: Self::DEFAULT_DENSE_SPAN_PER_ELEM,
            dense_max_span: Self::DEFAULT_DENSE_MAX_SPAN,
            paged_bits_per_elem: Self::DEFAULT_PAGED_BITS_PER_ELEM,
            paged_max_span: Self::DEFAULT_PAGED_MAX_SPAN,
            runs_merge_limit: Self::DEFAULT_RUNS_MERGE_LIMIT,
        }
    }
}

/// The storage tier a [`RowAccum`] selected for the current row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccumTier {
    /// Tight span: dense value array plus presence bitmap.
    Dense,
    /// Medium span: presence bitmap directing 64-slot value pages.
    Paged,
    /// Wide or sparse span: sorted-run list, merged on overflow and drain.
    Runs,
}

impl AccumTier {
    /// Selects the tier for an output row spanning `span` coordinates with
    /// an expected `nnz_hint` incoming psums.
    pub fn select(span: u64, nnz_hint: u64, cfg: &AccumConfig) -> AccumTier {
        if span <= nnz_hint.saturating_mul(cfg.dense_span_per_elem) && span <= cfg.dense_max_span {
            AccumTier::Dense
        } else if span <= nnz_hint.saturating_mul(cfg.paged_bits_per_elem)
            && span <= cfg.paged_max_span
        {
            AccumTier::Paged
        } else {
            AccumTier::Runs
        }
    }

    /// Tier name for diagnostics and bench labels.
    pub fn name(self) -> &'static str {
        match self {
            AccumTier::Dense => "dense",
            AccumTier::Paged => "paged",
            AccumTier::Runs => "runs",
        }
    }
}

/// Sentinel for an unallocated value page in the paged tier.
const NO_PAGE: u32 = u32::MAX;

/// A reusable per-row psum accumulator.
///
/// Lifecycle: [`RowAccum::begin`] (or [`RowAccum::begin_runs`]) arms the
/// accumulator for one output row, [`RowAccum::scatter_scaled`] /
/// [`RowAccum::push_run`] feed it sorted fibers in merge-source order, and
/// [`RowAccum::drain`] returns the merged fiber and resets the accumulator
/// for reuse — all buffers (value array, bitmap, pages, run list) keep
/// their allocations across rows.
///
/// ```
/// use flexagon_sparse::{AccumConfig, Element, Fiber, RowAccum};
/// let a = Fiber::from_sorted(vec![Element::new(1, 1.0), Element::new(3, 2.0)]);
/// let b = Fiber::from_sorted(vec![Element::new(3, 4.0), Element::new(7, 8.0)]);
/// let mut acc = RowAccum::new();
/// acc.begin(1, 7, 4, &AccumConfig::default());
/// acc.scatter_scaled(a.as_view(), 1.0);
/// acc.scatter_scaled(b.as_view(), 0.5);
/// let merged = acc.drain();
/// assert_eq!(merged.get(3), Some(4.0));
/// assert_eq!(merged.len(), 3);
/// ```
#[derive(Debug, Clone, Default)]
pub struct RowAccum {
    tier: Option<AccumTier>,
    /// Lowest coordinate of the armed span (dense/paged tiers).
    lo: u32,
    /// Words of the presence bitmap in use for the armed span.
    n_words: usize,
    /// Distinct coordinates touched so far (dense/paged tiers).
    distinct: usize,
    /// Run-list collapse threshold (runs tier).
    runs_limit: usize,
    /// Dense tier: one value slot per coordinate in the span. Slots are
    /// only meaningful under a set presence bit, so stale values from
    /// earlier rows never need clearing.
    vals: Vec<Value>,
    /// Presence bitmap (dense and paged tiers), zeroed by every drain.
    words: Vec<u64>,
    /// Paged tier: bitmap word -> value-page index, [`NO_PAGE`] when unset.
    pages: Vec<u32>,
    /// Paged tier: 64-slot value pages, allocated on first word touch.
    page_pool: Vec<Value>,
    /// Runs tier: sorted runs in arrival order.
    runs: Vec<Fiber>,
    /// Recycled run buffers.
    spare: Vec<Fiber>,
}

impl RowAccum {
    /// Creates an empty, un-armed accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// The tier selected by the last `begin`, if armed.
    pub fn tier(&self) -> Option<AccumTier> {
        self.tier
    }

    /// Arms the accumulator for a row whose psums span `[lo, hi]` with an
    /// expected `nnz_hint` incoming elements, selecting the tier by the
    /// span/nnz shape.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the previous row was not drained or
    /// `hi < lo`.
    pub fn begin(&mut self, lo: u32, hi: u32, nnz_hint: u64, cfg: &AccumConfig) {
        debug_assert!(self.is_drained(), "begin on an undrained accumulator");
        debug_assert!(lo <= hi, "inverted span");
        let span = (hi - lo) as u64 + 1;
        let tier = AccumTier::select(span, nnz_hint, cfg);
        self.lo = lo;
        self.n_words = (span as usize).div_ceil(64);
        match tier {
            AccumTier::Dense => {
                // Word-aligned sizing: the SIMD drain compacts whole 64-slot
                // value windows per presence word, so the array covers the
                // final partial word too. Slack slots sit under clear
                // presence bits and are never emitted.
                let padded = self.n_words * 64;
                if self.vals.len() < padded {
                    self.vals.resize(padded, 0.0);
                }
                if self.words.len() < self.n_words {
                    self.words.resize(self.n_words, 0);
                }
            }
            AccumTier::Paged => {
                if self.words.len() < self.n_words {
                    self.words.resize(self.n_words, 0);
                }
                if self.pages.len() < self.n_words {
                    self.pages.resize(self.n_words, NO_PAGE);
                }
            }
            AccumTier::Runs => {
                self.runs_limit = cfg.runs_merge_limit.max(2);
            }
        }
        self.tier = Some(tier);
    }

    /// Arms the accumulator as a plain sorted-run collector — the form the
    /// engine uses to hold a split row's chunk fibers across tiles.
    pub fn begin_runs(&mut self, cfg: &AccumConfig) {
        debug_assert!(self.is_drained(), "begin on an undrained accumulator");
        self.runs_limit = cfg.runs_merge_limit.max(2);
        self.tier = Some(AccumTier::Runs);
    }

    /// Whether the accumulator holds no undrained data.
    pub fn is_drained(&self) -> bool {
        self.distinct == 0 && self.runs.is_empty()
    }

    /// Scatters `fiber` scaled by `factor` into the row, as the next merge
    /// source. Coordinates must lie within the armed span (dense/paged).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the accumulator is not armed.
    pub fn scatter_scaled(&mut self, fiber: FiberView<'_>, factor: Value) {
        self.scatter_impl::<true>(fiber, factor);
    }

    /// Scatters `fiber` unscaled — the form merge passes over
    /// already-scaled fibers use. Identical to
    /// `scatter_scaled(fiber, 1.0)` bit for bit, without the multiplies.
    pub fn scatter(&mut self, fiber: FiberView<'_>) {
        self.scatter_impl::<false>(fiber, 1.0);
    }

    /// Shared scatter body. The const parameter monomorphizes the two entry
    /// points, so the unscaled path compiles without the per-element
    /// multiply while both keep exactly one copy of the tier logic.
    ///
    /// The scatter loop stays scalar by design: its writes are
    /// random-access indexed adds (`vals[bit] += v`) with a data-dependent
    /// first-touch branch per element, which vectorizing would require
    /// gather/scatter with intra-vector conflict detection — AVX2 has no
    /// scatter at all, and colliding coordinates within one vector would
    /// reorder float adds and break bit-identity. The SIMD win for these
    /// tiers is on the drain side instead, where the access pattern is
    /// sequential.
    #[inline]
    fn scatter_impl<const SCALED: bool>(&mut self, fiber: FiberView<'_>, factor: Value) {
        let scale = |v: Value| if SCALED { v * factor } else { v };
        match self.tier.expect("scatter on an un-armed accumulator") {
            AccumTier::Dense => {
                for (&c, &v) in fiber.coords().iter().zip(fiber.values()) {
                    let bit = (c - self.lo) as usize;
                    let (w, m) = (bit >> 6, 1u64 << (bit & 63));
                    if self.words[w] & m == 0 {
                        self.words[w] |= m;
                        self.vals[bit] = scale(v);
                        self.distinct += 1;
                    } else {
                        self.vals[bit] += scale(v);
                    }
                }
            }
            AccumTier::Paged => {
                for (&c, &v) in fiber.coords().iter().zip(fiber.values()) {
                    let bit = (c - self.lo) as usize;
                    let (w, m) = (bit >> 6, 1u64 << (bit & 63));
                    let mut page = self.pages[w];
                    if page == NO_PAGE {
                        page = (self.page_pool.len() / 64) as u32;
                        self.page_pool.resize(self.page_pool.len() + 64, 0.0);
                        self.pages[w] = page;
                    }
                    let slot = page as usize * 64 + (bit & 63);
                    if self.words[w] & m == 0 {
                        self.words[w] |= m;
                        self.page_pool[slot] = scale(v);
                        self.distinct += 1;
                    } else {
                        self.page_pool[slot] += scale(v);
                    }
                }
            }
            AccumTier::Runs => {
                if fiber.is_empty() {
                    return;
                }
                let mut run = self.spare.pop().unwrap_or_default();
                if SCALED {
                    run.scale_from(fiber, factor);
                } else {
                    run.clone_from_view(fiber);
                }
                self.runs.push(run);
                self.collapse_if_full();
            }
        }
    }

    /// Scatters a [`BlockedFiber`] scaled by `factor` into the row without
    /// first materializing its SoA form — the blocked-format drain into the
    /// psum tiers. Bit-identical to `scatter_scaled(decoded, factor)`: the
    /// blocked walk visits elements in the same ascending coordinate order
    /// and applies the same per-element operations.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the accumulator is not armed.
    pub fn scatter_blocked(&mut self, fiber: &crate::BlockedFiber, factor: Value) {
        match self.tier.expect("scatter on an un-armed accumulator") {
            AccumTier::Dense => {
                fiber.for_each(|c, v| {
                    let bit = (c - self.lo) as usize;
                    let (w, m) = (bit >> 6, 1u64 << (bit & 63));
                    if self.words[w] & m == 0 {
                        self.words[w] |= m;
                        self.vals[bit] = v * factor;
                        self.distinct += 1;
                    } else {
                        self.vals[bit] += v * factor;
                    }
                });
            }
            AccumTier::Paged => {
                fiber.for_each(|c, v| {
                    let bit = (c - self.lo) as usize;
                    let (w, m) = (bit >> 6, 1u64 << (bit & 63));
                    let mut page = self.pages[w];
                    if page == NO_PAGE {
                        page = (self.page_pool.len() / 64) as u32;
                        self.page_pool.resize(self.page_pool.len() + 64, 0.0);
                        self.pages[w] = page;
                    }
                    let slot = page as usize * 64 + (bit & 63);
                    if self.words[w] & m == 0 {
                        self.words[w] |= m;
                        self.page_pool[slot] = v * factor;
                        self.distinct += 1;
                    } else {
                        self.page_pool[slot] += v * factor;
                    }
                });
            }
            AccumTier::Runs => {
                if fiber.is_empty() {
                    return;
                }
                let decoded = fiber.decode();
                let mut run = self.spare.pop().unwrap_or_default();
                run.scale_from(decoded.as_view(), factor);
                self.runs.push(run);
                self.collapse_if_full();
            }
        }
    }

    /// Appends an owned, coordinate-sorted fiber as the next merge source
    /// (runs tier only) — the zero-copy form for fibers the caller already
    /// materialized, such as a split row's per-chunk psum fibers.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the accumulator is not armed as runs.
    pub fn push_run(&mut self, fiber: Fiber) {
        debug_assert_eq!(
            self.tier,
            Some(AccumTier::Runs),
            "push_run needs the runs tier"
        );
        if fiber.is_empty() {
            return;
        }
        self.runs.push(fiber);
        self.collapse_if_full();
    }

    /// Collapses the run list into one run when it hits the limit. A prefix
    /// merge folds values in exactly the order a single final merge would,
    /// so this is invisible in the drained result.
    fn collapse_if_full(&mut self) {
        if self.runs.len() < self.runs_limit {
            return;
        }
        let (merged, _) = {
            let views: Vec<FiberView<'_>> = self.runs.iter().map(Fiber::as_view).collect();
            merge::merge_accumulate(&views)
        };
        for mut f in self.runs.drain(..) {
            f.clear();
            self.spare.push(f);
        }
        self.runs.push(merged);
    }

    /// Reads the merged row back out as a coordinate-sorted fiber and
    /// resets the accumulator for the next `begin`.
    ///
    /// The result is bit-identical to `merge::merge_accumulate` over the
    /// scattered fibers in arrival order.
    pub fn drain(&mut self) -> Fiber {
        let tier = self.tier.take().expect("drain on an un-armed accumulator");
        match tier {
            AccumTier::Dense => {
                // Bitmap-directed compress-store: each non-zero presence
                // word compacts its 64-slot value window in one
                // `simd::compress_word` call (per-byte `vpermps` shuffles on
                // AVX2, the trailing_zeros loop on the scalar path) instead
                // of a branch per set bit. Values are moved, never summed,
                // so the drain is bit-exact on either path.
                let mut coords: Vec<u32> = Vec::with_capacity(self.distinct);
                let mut values: Vec<Value> = Vec::with_capacity(self.distinct);
                for w in 0..self.n_words {
                    let word = self.words[w];
                    if word == 0 {
                        continue;
                    }
                    self.words[w] = 0;
                    simd::compress_word(
                        word,
                        self.lo + ((w << 6) as u32),
                        &self.vals[w << 6..(w << 6) + 64],
                        &mut coords,
                        &mut values,
                    );
                }
                self.distinct = 0;
                Fiber::from_parts(coords, values)
            }
            AccumTier::Paged => {
                // Same compress-store as the dense drain; the window is the
                // word's 64-slot page instead of a span offset.
                let mut coords: Vec<u32> = Vec::with_capacity(self.distinct);
                let mut values: Vec<Value> = Vec::with_capacity(self.distinct);
                for w in 0..self.n_words {
                    let word = self.words[w];
                    if word == 0 {
                        continue;
                    }
                    self.words[w] = 0;
                    let base = self.pages[w] as usize * 64;
                    self.pages[w] = NO_PAGE;
                    simd::compress_word(
                        word,
                        self.lo + ((w << 6) as u32),
                        &self.page_pool[base..base + 64],
                        &mut coords,
                        &mut values,
                    );
                }
                self.page_pool.clear();
                self.distinct = 0;
                Fiber::from_parts(coords, values)
            }
            AccumTier::Runs => match self.runs.len() {
                0 => Fiber::new(),
                1 => self.runs.pop().expect("len checked"),
                _ => {
                    let (merged, _) = {
                        let views: Vec<FiberView<'_>> =
                            self.runs.iter().map(Fiber::as_view).collect();
                        merge::merge_accumulate(&views)
                    };
                    for mut f in self.runs.drain(..) {
                        f.clear();
                        self.spare.push(f);
                    }
                    merged
                }
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Element;

    fn f(pairs: &[(u32, Value)]) -> Fiber {
        Fiber::from_sorted(pairs.iter().map(|&(c, v)| Element::new(c, v)).collect())
    }

    /// Reference: k-way merge of the scaled fibers in arrival order.
    fn reference(fibers: &[(Fiber, Value)]) -> Fiber {
        let scaled: Vec<Fiber> = fibers.iter().map(|(fb, s)| fb.scaled(*s)).collect();
        let views: Vec<FiberView<'_>> = scaled.iter().map(Fiber::as_view).collect();
        merge::merge_accumulate(&views).0
    }

    fn span_of(fibers: &[(Fiber, Value)]) -> (u32, u32, u64) {
        let mut lo = u32::MAX;
        let mut hi = 0;
        let mut nnz = 0;
        for (fb, _) in fibers {
            if fb.is_empty() {
                continue;
            }
            lo = lo.min(fb.coords()[0]);
            hi = hi.max(*fb.coords().last().unwrap());
            nnz += fb.len() as u64;
        }
        (lo, hi, nnz)
    }

    fn check_tier(fibers: &[(Fiber, Value)], cfg: &AccumConfig, want_tier: AccumTier) {
        let (lo, hi, nnz) = span_of(fibers);
        let mut acc = RowAccum::new();
        acc.begin(lo, hi, nnz, cfg);
        assert_eq!(acc.tier(), Some(want_tier));
        for (fb, s) in fibers {
            acc.scatter_scaled(fb.as_view(), *s);
        }
        let got = acc.drain();
        let want = reference(fibers);
        assert_eq!(got, want, "{} tier mismatch", want_tier.name());
        assert!(acc.is_drained());
    }

    #[test]
    fn dense_tier_matches_merge() {
        let fibers = vec![
            (f(&[(3, 1.0), (5, 2.0), (9, 3.0)]), 2.0),
            (f(&[(5, 1.5), (7, 0.5)]), -1.0),
            (f(&[(3, 4.0), (9, 0.25)]), 0.5),
        ];
        check_tier(&fibers, &AccumConfig::default(), AccumTier::Dense);
    }

    #[test]
    fn paged_tier_matches_merge() {
        // 6 elements over a span of ~300: too sparse for dense (span >
        // nnz * 4) but fine for the bitmap.
        let fibers = vec![
            (f(&[(10, 1.0), (200, 2.0)]), 1.0),
            (f(&[(10, 3.0), (310, 4.0)]), 2.5),
            (f(&[(155, 5.0), (310, 6.0)]), -0.5),
        ];
        check_tier(&fibers, &AccumConfig::default(), AccumTier::Paged);
    }

    #[test]
    fn runs_tier_matches_merge() {
        // A huge span with few elements: both array tiers are unaffordable.
        let fibers = vec![
            (f(&[(0, 1.0), (1 << 30, 2.0)]), 1.0),
            (f(&[(512, 3.0), (1 << 30, 4.0)]), 3.0),
        ];
        check_tier(&fibers, &AccumConfig::default(), AccumTier::Runs);
    }

    #[test]
    fn runs_overflow_collapse_is_invisible() {
        let sources: Vec<(Fiber, Value)> = (0..9)
            .map(|i| (f(&[(i, 1.0), (i + 3, 0.5), (100, 0.125)]), 1.0 + i as Value))
            .collect();
        let tiny_limit = AccumConfig {
            runs_merge_limit: 3,
            ..AccumConfig::default()
        };
        let mut acc = RowAccum::new();
        acc.begin_runs(&tiny_limit);
        for (fb, s) in &sources {
            acc.scatter_scaled(fb.as_view(), *s);
        }
        let got = acc.drain();
        assert_eq!(got, reference(&sources));
    }

    #[test]
    fn first_touch_stores_rather_than_adds() {
        // -0.0 must survive: 0.0 + -0.0 would flip it to +0.0.
        let fibers = vec![(f(&[(4, -0.0)]), 1.0)];
        let (lo, hi, nnz) = span_of(&fibers);
        let mut acc = RowAccum::new();
        acc.begin(lo, hi, nnz, &AccumConfig::default());
        acc.scatter_scaled(fibers[0].0.as_view(), 1.0);
        let got = acc.drain();
        assert_eq!(got.values()[0].to_bits(), (-0.0f32).to_bits());
    }

    #[test]
    fn reuse_across_rows_and_tiers() {
        let mut acc = RowAccum::new();
        let cfg = AccumConfig::default();
        let batches = [
            vec![(f(&[(0, 1.0), (63, 2.0)]), 1.0), (f(&[(63, 3.0)]), 2.0)],
            vec![(f(&[(1000, 1.0), (9000, 2.0)]), 1.0)], // different span
            vec![(f(&[(2, 5.0)]), 4.0), (f(&[(2, 1.0), (3, 1.0)]), 1.0)],
        ];
        for fibers in &batches {
            let (lo, hi, nnz) = span_of(fibers);
            acc.begin(lo, hi, nnz, &cfg);
            for (fb, s) in fibers {
                acc.scatter_scaled(fb.as_view(), *s);
            }
            assert_eq!(acc.drain(), reference(fibers));
        }
    }

    #[test]
    fn push_run_collects_owned_fibers() {
        let mut acc = RowAccum::new();
        acc.begin_runs(&AccumConfig::default());
        acc.push_run(f(&[(1, 1.0), (5, 2.0)]));
        acc.push_run(Fiber::new()); // ignored
        acc.push_run(f(&[(5, 3.0)]));
        let got = acc.drain();
        assert_eq!(got.get(5), Some(5.0));
        assert_eq!(got.len(), 2);
    }

    #[test]
    fn scatter_blocked_matches_scatter_scaled() {
        use crate::BlockedFiber;
        // One batch per tier: clustered (dense), sparse-span (paged),
        // huge-span (runs).
        let batches = [
            vec![
                (f(&[(3, 1.0), (4, 2.0), (5, -0.5), (9, 3.0)]), 2.0),
                (f(&[(5, 1.5), (7, 0.5)]), -1.0),
            ],
            vec![
                (f(&[(10, 1.0), (200, 2.0)]), 1.0),
                (f(&[(10, 3.0), (310, 4.0)]), 2.5),
            ],
            vec![
                (f(&[(0, 1.0), (1 << 30, 2.0)]), 1.0),
                (f(&[(512, 3.0), (1 << 30, 4.0)]), 3.0),
            ],
        ];
        let cfg = AccumConfig::default();
        for fibers in &batches {
            let (lo, hi, nnz) = span_of(fibers);
            let mut scalar = RowAccum::new();
            scalar.begin(lo, hi, nnz, &cfg);
            let mut blocked = RowAccum::new();
            blocked.begin(lo, hi, nnz, &cfg);
            assert_eq!(scalar.tier(), blocked.tier());
            for (fb, s) in fibers {
                scalar.scatter_scaled(fb.as_view(), *s);
                blocked.scatter_blocked(&BlockedFiber::encode(fb.as_view(), 4), *s);
            }
            let (want, got) = (scalar.drain(), blocked.drain());
            assert_eq!(got.coords(), want.coords());
            let bits = |fb: &Fiber| fb.values().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&got), bits(&want));
        }
    }

    #[test]
    fn tier_selection_shape() {
        let cfg = AccumConfig::default();
        assert_eq!(AccumTier::select(16, 8, &cfg), AccumTier::Dense);
        assert_eq!(AccumTier::select(500, 8, &cfg), AccumTier::Paged);
        assert_eq!(AccumTier::select(1 << 30, 8, &cfg), AccumTier::Runs);
    }
}
