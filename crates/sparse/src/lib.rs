//! Sparse matrix substrate for the Flexagon accelerator simulator.
//!
//! This crate provides the data representations the paper's hardware operates
//! on:
//!
//! * [`Element`] — a `(coordinate, value)` duple, the unit the networks move.
//! * [`Fiber`] — a compressed row or column: a coordinate-sorted list of
//!   elements (the paper's §2.1 terminology, borrowed from GAMMA).
//! * [`CompressedMatrix`] — the unified CSR/CSC representation. The paper
//!   observes that "both CSR and CSC employ the same compression method, and
//!   thus, can be seen as a single compression format"; we encode that
//!   observation directly: one type, tagged with a [`MajorOrder`].
//! * [`DenseMatrix`] — dense reference used by tests and golden models.
//! * [`FiberIndex`] / [`MatrixIndex`] — tiered coordinate indexes (dense
//!   bitmap or block-skip list per fiber) behind the skip-ahead intersection
//!   paths of the Inner-Product dataflow.
//! * [`RowAccum`] — tiered per-row psum accumulators (dense array, paged
//!   bitmap-directed gather, or sorted-run list) behind the Outer-Product
//!   and Gustavson merge paths.
//! * [`FiberFormat`] / [`FormattedMatrix`] — the storage-format tier:
//!   blocked (BCSR-style), fixed-width (ELL-ish) and INT8-quantized
//!   encodings over the SoA baseline, selected per layer by the mapper the
//!   same way a dataflow is ([`format`]).
//! * Workload generators ([`gen`]) and reference SpGEMM kernels
//!   ([`mod@reference`]) implementing the Inner-Product,
//!   Outer-Product and Gustavson algorithms in software.
//!
//! # Example
//!
//! ```
//! use flexagon_sparse::{CompressedMatrix, MajorOrder, reference};
//!
//! # fn main() -> Result<(), flexagon_sparse::FormatError> {
//! // A 2x3 matrix in CSR with 3 non-zeros.
//! let a = CompressedMatrix::from_triplets(
//!     2, 3, &[(0, 1, 2.0), (1, 0, 1.0), (1, 2, 3.0)], MajorOrder::Row)?;
//! // A 3x2 matrix in CSR.
//! let b = CompressedMatrix::from_triplets(
//!     3, 2, &[(0, 0, 4.0), (1, 1, 5.0), (2, 0, 6.0)], MajorOrder::Row)?;
//! let c = reference::gustavson(&a, &b)?;
//! assert_eq!(c.get(0, 1), 10.0);
//! assert_eq!(c.get(1, 0), 22.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod accum;
mod bitmap;
mod compressed;
mod dense;
mod element;
mod error;
mod fiber;
pub mod format;
pub mod gen;
pub mod index;
pub mod io;
pub mod merge;
pub mod reference;
pub mod stats;
pub mod validate;

pub use accum::{AccumConfig, AccumTier, RowAccum};
pub use bitmap::BitmapMatrix;
pub use compressed::{CompressedMatrix, FiberIter, MajorOrder, MatrixView};
pub use dense::DenseMatrix;
pub use element::{Element, Value, ELEMENT_BYTES};
pub use error::FormatError;
pub use fiber::{ElementIter, Fiber, FiberView};
pub use format::{BlockedFiber, FiberFormat, FormatStats, FormattedMatrix};
pub use index::{FiberIndex, MatrixIndex, Prober};
pub use validate::{validate_matrix, ValidationConfig, ValidationError, ValuePolicy};

/// Convenience result alias for fallible format operations.
pub type Result<T> = std::result::Result<T, FormatError>;
