//! Validated ingestion for untrusted compressed matrices.
//!
//! The engine's hot paths assume their operands hold the `CompressedMatrix`
//! invariants — monotone pointers spanning the element data, per-fiber
//! coordinates strictly increasing and in bounds — and index without
//! checking. Matrices built through [`CompressedMatrix::from_triplets`] /
//! [`CompressedMatrix::from_fibers`] carry those invariants by
//! construction, but matrices *decoded from bytes* (the serve protocol, a
//! Matrix Market file, a golden fixture) arrive from outside the type
//! system's guarantees. This module is the single choke point such bytes
//! must pass:
//!
//! * [`ValidationError`] — the structured taxonomy: every structural
//!   defect ([`FormatError`]), plus the untrusted-input classes the
//!   structural check cannot see (non-finite values, dimension/nnz
//!   resource bombs, element-count lies).
//! * [`ValidationConfig`] — the policy knob. [`ValidationConfig::permissive`]
//!   checks structure only (in-process data, where NaN/Inf are the
//!   caller's business); [`ValidationConfig::untrusted`] adds the
//!   network-facing policy: non-finite values rejected and dimensions/nnz
//!   capped below the allocation-bomb range near the `u32` boundary (a
//!   wire matrix claiming `u32::MAX` rows costs its sender a few bytes
//!   and would cost the engine tens of gigabytes of `O(rows)` scratch).
//! * [`validate_matrix`] — runs a config against a matrix.
//!
//! Empty fibers need no normalization pass: `ptr[i] == ptr[i+1]` *is*
//! their normal form — the only representation CSR/CSC admits — so
//! validation accepts all-empty and zero-dimension matrices as first-class
//! citizens (the adversarial generator families pin the engine on them).
//!
//! The invariant the fuzz harness enforces on top of this module:
//! validated input never panics downstream, invalid input always yields a
//! typed error here.

use crate::{CompressedMatrix, FormatError, Value};

/// What to do with non-finite (`NaN`/`±Inf`) stored values.
///
/// JSON cannot spell `NaN`, but `1e999` parses to `+Inf` — a wire operand
/// can smuggle non-finite values past the parser, and one `Inf` poisons
/// every output element its fiber touches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ValuePolicy {
    /// Accept any bit pattern (in-process data; the default).
    #[default]
    AllowNonFinite,
    /// Reject `NaN` and `±Inf` with [`ValidationError::NonFiniteValue`].
    RejectNonFinite,
}

/// Dimension ceiling of [`ValidationConfig::untrusted`]: 2^24 rows or
/// columns. Far above every workload the simulator models, far below the
/// `u32` boundary where a tiny wire payload (a CSC matrix with
/// `rows = u32::MAX` has a three-entry pointer vector) buys gigabytes of
/// `O(dim)` engine scratch.
pub const UNTRUSTED_MAX_DIM: u32 = 1 << 24;

/// Element ceiling of [`ValidationConfig::untrusted`]: 2^28 stored
/// elements (2 GiB of element data) — beyond what a 64 MiB frame can
/// carry, so it only triggers on programmatic misuse.
pub const UNTRUSTED_MAX_NNZ: u64 = 1 << 28;

/// Validation policy: value handling plus resource ceilings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ValidationConfig {
    /// Non-finite value handling.
    pub values: ValuePolicy,
    /// Inclusive ceiling on `rows` and `cols`.
    pub max_dim: u32,
    /// Inclusive ceiling on the stored element count.
    pub max_nnz: u64,
}

impl ValidationConfig {
    /// Structure-only validation: any dimensions, any value bits. The
    /// policy for data this process built itself.
    pub fn permissive() -> Self {
        Self {
            values: ValuePolicy::AllowNonFinite,
            max_dim: u32::MAX,
            max_nnz: u64::MAX,
        }
    }

    /// The network-facing policy: structure, finite values, and
    /// dimensions/nnz capped at [`UNTRUSTED_MAX_DIM`] /
    /// [`UNTRUSTED_MAX_NNZ`].
    pub fn untrusted() -> Self {
        Self {
            values: ValuePolicy::RejectNonFinite,
            max_dim: UNTRUSTED_MAX_DIM,
            max_nnz: UNTRUSTED_MAX_NNZ,
        }
    }
}

impl Default for ValidationConfig {
    fn default() -> Self {
        Self::permissive()
    }
}

/// The structured taxonomy of ingestion defects.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ValidationError {
    /// A structural defect: unsorted or duplicate coordinates,
    /// out-of-bounds indices, malformed pointers (the [`FormatError`]
    /// taxonomy, verbatim).
    Structure(FormatError),
    /// A stored value is `NaN` or `±Inf` under
    /// [`ValuePolicy::RejectNonFinite`].
    NonFiniteValue {
        /// Index into the value array (fiber-major order).
        index: usize,
        /// The offending value.
        value: Value,
    },
    /// A dimension exceeds the configured ceiling (an allocation bomb near
    /// the `u32` boundary, not a representable workload).
    DimTooLarge {
        /// `"rows"` or `"cols"`.
        what: &'static str,
        /// The declared dimension (`u64` so loaders can report dimensions
        /// beyond the `u32` coordinate space verbatim).
        value: u64,
        /// The configured ceiling.
        limit: u32,
    },
    /// The stored element count exceeds the configured ceiling.
    NnzTooLarge {
        /// The element count.
        nnz: u64,
        /// The configured ceiling.
        limit: u64,
    },
    /// A header-declared element count disagrees with the elements
    /// actually present (truncated or padded input).
    NnzMismatch {
        /// The count the header declared.
        declared: u64,
        /// The count actually parsed.
        actual: u64,
    },
    /// A formatted representation ([`FormattedMatrix`]) violates its
    /// encoding's internal invariants — blocked masks empty, pointer
    /// vectors out of shape, ELL lengths past the width. Reported by
    /// [`FormattedMatrix::validate`], never by [`validate_matrix`].
    ///
    /// [`FormattedMatrix`]: crate::FormattedMatrix
    /// [`FormattedMatrix::validate`]: crate::FormattedMatrix::validate
    FormatDefect {
        /// The violated invariant, as a static description.
        what: &'static str,
    },
}

impl std::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Structure(e) => write!(f, "{e}"),
            Self::NonFiniteValue { index, value } => {
                write!(f, "non-finite value {value} at element {index}")
            }
            Self::DimTooLarge { what, value, limit } => {
                write!(f, "{what} dimension {value} exceeds the ceiling of {limit}")
            }
            Self::NnzTooLarge { nnz, limit } => {
                write!(f, "{nnz} stored elements exceed the ceiling of {limit}")
            }
            Self::NnzMismatch { declared, actual } => {
                write!(
                    f,
                    "header declares {declared} elements but {actual} are present"
                )
            }
            Self::FormatDefect { what } => {
                write!(f, "formatted storage violates its invariants: {what}")
            }
        }
    }
}

impl std::error::Error for ValidationError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Structure(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FormatError> for ValidationError {
    fn from(e: FormatError) -> Self {
        Self::Structure(e)
    }
}

/// Validates `m` under `cfg`: resource ceilings first (cheap, and they
/// bound the cost of everything after), then structure, then the value
/// policy.
///
/// # Errors
///
/// The first defect found, as a [`ValidationError`].
pub fn validate_matrix(
    m: &CompressedMatrix,
    cfg: &ValidationConfig,
) -> Result<(), ValidationError> {
    for (what, value) in [("rows", m.rows()), ("cols", m.cols())] {
        if value > cfg.max_dim {
            return Err(ValidationError::DimTooLarge {
                what,
                value: u64::from(value),
                limit: cfg.max_dim,
            });
        }
    }
    if m.nnz() as u64 > cfg.max_nnz {
        return Err(ValidationError::NnzTooLarge {
            nnz: m.nnz() as u64,
            limit: cfg.max_nnz,
        });
    }
    m.validate()?;
    if cfg.values == ValuePolicy::RejectNonFinite {
        if let Some((index, &value)) = m.values().iter().enumerate().find(|(_, v)| !v.is_finite()) {
            return Err(ValidationError::NonFiniteValue { index, value });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MajorOrder;

    fn sample() -> CompressedMatrix {
        CompressedMatrix::from_triplets(
            2,
            3,
            &[(0, 1, 2.0), (1, 0, 1.0), (1, 2, 3.0)],
            MajorOrder::Row,
        )
        .unwrap()
    }

    #[test]
    fn well_formed_passes_both_policies() {
        let m = sample();
        validate_matrix(&m, &ValidationConfig::permissive()).unwrap();
        validate_matrix(&m, &ValidationConfig::untrusted()).unwrap();
    }

    #[test]
    fn empty_fibers_are_normal_form() {
        // All-empty, zero-dimension, and single-empty-fiber matrices are
        // already normalized — validation accepts them as-is.
        for m in [
            CompressedMatrix::zero(8, 8, MajorOrder::Row),
            CompressedMatrix::zero(0, 0, MajorOrder::Row),
            CompressedMatrix::zero(0, 5, MajorOrder::Col),
            CompressedMatrix::zero(1, 1, MajorOrder::Col),
        ] {
            validate_matrix(&m, &ValidationConfig::untrusted()).unwrap();
        }
    }

    #[test]
    fn non_finite_values_follow_the_policy() {
        let m = CompressedMatrix::from_triplets(
            2,
            2,
            &[(0, 0, 1.0), (1, 1, f32::INFINITY)],
            MajorOrder::Row,
        )
        .unwrap();
        validate_matrix(&m, &ValidationConfig::permissive()).unwrap();
        let err = validate_matrix(&m, &ValidationConfig::untrusted()).unwrap_err();
        assert!(matches!(
            err,
            ValidationError::NonFiniteValue { index: 1, .. }
        ));
        let nan =
            CompressedMatrix::from_triplets(1, 1, &[(0, 0, f32::NAN)], MajorOrder::Row).unwrap();
        assert!(validate_matrix(&nan, &ValidationConfig::untrusted()).is_err());
    }

    #[test]
    fn u32_boundary_dims_are_rejected_cheaply() {
        // A CSC matrix with u32::MAX rows has a tiny pointer vector — the
        // ceiling must catch it before any O(rows) allocation downstream.
        let bomb = CompressedMatrix::zero(u32::MAX, 2, MajorOrder::Col);
        let err = validate_matrix(&bomb, &ValidationConfig::untrusted()).unwrap_err();
        assert!(matches!(
            err,
            ValidationError::DimTooLarge {
                what: "rows",
                value,
                ..
            } if value == u64::from(u32::MAX)
        ));
        let wide = CompressedMatrix::zero(2, u32::MAX - 1, MajorOrder::Row);
        assert!(matches!(
            validate_matrix(&wide, &ValidationConfig::untrusted()).unwrap_err(),
            ValidationError::DimTooLarge { what: "cols", .. }
        ));
        // The permissive policy still takes them (structure is sound).
        validate_matrix(&bomb, &ValidationConfig::permissive()).unwrap();
    }

    #[test]
    fn structural_defects_surface_as_structure() {
        let m = CompressedMatrix::from_raw_parts(
            2,
            2,
            MajorOrder::Row,
            vec![0, 1, 1],
            vec![5],
            vec![1.0],
        )
        .unwrap_err();
        assert!(matches!(
            m,
            ValidationError::Structure(FormatError::CoordOutOfBounds { .. })
        ));
    }

    #[test]
    fn display_is_informative() {
        let e = ValidationError::NnzMismatch {
            declared: 10,
            actual: 7,
        };
        assert!(format!("{e}").contains("declares 10"));
        let e = ValidationError::DimTooLarge {
            what: "rows",
            value: u64::from(u32::MAX),
            limit: UNTRUSTED_MAX_DIM,
        };
        assert!(format!("{e}").contains("ceiling"));
        let e: ValidationError = FormatError::UnsortedFiber { fiber: 3 }.into();
        assert!(format!("{e}").contains("unsorted"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ValidationError>();
    }
}
