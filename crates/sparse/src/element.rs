//! The `(coordinate, value)` duple — the atom every Flexagon network moves.

use serde::{Deserialize, Serialize};

/// Scalar value type used throughout the simulator.
///
/// The paper's configuration (Table 5) uses a 32-bit total word — a 16-bit
/// value plus a 16-bit coordinate. We compute in `f32` for numerical fidelity
/// of the functional model and charge [`ELEMENT_BYTES`] per element for all
/// traffic accounting, matching the paper's word size.
pub type Value = f32;

/// Bytes charged per `(coordinate, value)` element in traffic accounting.
///
/// Table 5: "Total Word Size (Value+Coordinate): 32 bits".
pub const ELEMENT_BYTES: u64 = 4;

/// One compressed-matrix element: a coordinate within a fiber plus a value.
///
/// The coordinate is the *minor* index of the element: for a CSR (row-major)
/// matrix it is the column; for CSC (column-major) it is the row. Elements
/// within a [`crate::Fiber`] are sorted by coordinate, which is the invariant
/// the merger-reduction network relies on.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Element {
    /// Minor coordinate of the element within its fiber.
    pub coord: u32,
    /// Numeric value.
    pub value: Value,
}

impl Element {
    /// Creates a new element.
    ///
    /// ```
    /// use flexagon_sparse::Element;
    /// let e = Element::new(3, 1.5);
    /// assert_eq!(e.coord, 3);
    /// assert_eq!(e.value, 1.5);
    /// ```
    #[inline]
    pub fn new(coord: u32, value: Value) -> Self {
        Self { coord, value }
    }

    /// Returns a copy with the value scaled by `factor`.
    ///
    /// This is what a multiplier in the multiplier network does to a
    /// streaming element when holding `factor` stationary.
    #[inline]
    #[must_use]
    pub fn scaled(self, factor: Value) -> Self {
        Self {
            coord: self.coord,
            value: self.value * factor,
        }
    }
}

impl From<(u32, Value)> for Element {
    fn from((coord, value): (u32, Value)) -> Self {
        Self { coord, value }
    }
}

impl std::fmt::Display for Element {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({}, {})", self.coord, self.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_sets_fields() {
        let e = Element::new(7, 2.5);
        assert_eq!(e.coord, 7);
        assert_eq!(e.value, 2.5);
    }

    #[test]
    fn scaled_multiplies_value_only() {
        let e = Element::new(7, 2.5).scaled(2.0);
        assert_eq!(e.coord, 7);
        assert_eq!(e.value, 5.0);
    }

    #[test]
    fn from_tuple() {
        let e: Element = (1u32, 3.0f32).into();
        assert_eq!(e, Element::new(1, 3.0));
    }

    #[test]
    fn display_is_nonempty() {
        assert_eq!(format!("{}", Element::new(2, 1.0)), "(2, 1)");
    }

    #[test]
    fn element_bytes_is_32_bits() {
        assert_eq!(ELEMENT_BYTES, 4);
    }
}
