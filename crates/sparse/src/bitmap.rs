//! Bitmap-compressed matrices.
//!
//! Besides CSR/CSC, sparse DNN accelerators commonly use a *bitmap* format
//! (SIGMA's original implementation does): a dense bit mask marking
//! non-zero positions plus a packed value vector. The paper's §2.1 cites
//! it among the widely used compression formats; we provide it for format
//! studies and as the interchange target of MINT-style converter widgets
//! mentioned in the related work.

use crate::{CompressedMatrix, DenseMatrix, MajorOrder, Value};
use serde::{Deserialize, Serialize};

/// A matrix compressed as (bit mask, packed non-zero values), row-major.
///
/// Storage cost is `rows*cols/8` bytes of mask plus a value-only payload
/// per non-zero — cheaper than CSR at moderate densities, which is why
/// moderately sparse accelerators favour it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BitmapMatrix {
    rows: u32,
    cols: u32,
    /// Row-major bit mask; bit `r*cols + c` marks a stored value.
    mask: Vec<u64>,
    /// Non-zero values in row-major scan order.
    values: Vec<Value>,
}

impl BitmapMatrix {
    /// Builds a bitmap matrix from a compressed (CSR/CSC) one.
    pub fn from_compressed(m: &CompressedMatrix) -> Self {
        let dense = DenseMatrix::from_compressed(m);
        Self::from_dense(&dense)
    }

    /// Builds a bitmap matrix from a dense one, dropping exact zeros.
    pub fn from_dense(d: &DenseMatrix) -> Self {
        let bits = d.rows() as usize * d.cols() as usize;
        let mut mask = vec![0u64; bits.div_ceil(64)];
        let mut values = Vec::new();
        for r in 0..d.rows() {
            for c in 0..d.cols() {
                let v = d.get(r, c);
                if v != 0.0 {
                    let bit = r as usize * d.cols() as usize + c as usize;
                    mask[bit / 64] |= 1u64 << (bit % 64);
                    values.push(v);
                }
            }
        }
        Self {
            rows: d.rows(),
            cols: d.cols(),
            mask,
            values,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> u32 {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> u32 {
        self.cols
    }

    /// Number of stored non-zero values.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Whether position `(row, col)` holds a stored value.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn is_set(&self, row: u32, col: u32) -> bool {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        let bit = row as usize * self.cols as usize + col as usize;
        self.mask[bit / 64] & (1u64 << (bit % 64)) != 0
    }

    /// Value at `(row, col)` (zero when unset).
    ///
    /// Computed by popcounting the mask prefix — the same rank-select
    /// arithmetic the hardware's bitmap decoder performs. The prefix
    /// popcount runs through [`simd::popcount_u64`] (4-word nibble-LUT
    /// popcounts on AVX2) instead of a word-at-a-time loop.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn get(&self, row: u32, col: u32) -> Value {
        if !self.is_set(row, col) {
            return 0.0;
        }
        let bit = row as usize * self.cols as usize + col as usize;
        let mut rank = simd::popcount_u64(&self.mask[..bit / 64]) as usize;
        let tail = self.mask[bit / 64] & ((1u64 << (bit % 64)) - 1);
        rank += tail.count_ones() as usize;
        self.values[rank]
    }

    /// Number of positions set in both this matrix's mask and `other`'s —
    /// the structural intersection cardinality, computed as a wide
    /// AND + popcount over the packed masks without materializing either
    /// operand ([`simd::and_popcount_u64`]). This is the bitmap-format
    /// analogue of [`crate::FiberView::intersect_count`], sized for whole
    /// matrices: format studies use it to estimate effectual multiplies
    /// per (row, col) tile pairing straight from the interchange masks.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn intersect_count(&self, other: &BitmapMatrix) -> u64 {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "bitmap intersection requires identical dimensions"
        );
        simd::and_popcount_u64(&self.mask, &other.mask)
    }

    /// Compressed footprint in bytes: mask plus packed values.
    ///
    /// A bitmap entry needs no coordinate, so each stored value costs only
    /// the 16-bit value half of Table 5's 32-bit (value + coordinate)
    /// word; positions are carried by the mask at one bit per cell.
    pub fn compressed_size_bytes(&self) -> u64 {
        self.mask.len() as u64 * 8 + self.values.len() as u64 * 2
    }

    /// Converts to CSR/CSC.
    pub fn to_compressed(&self, order: MajorOrder) -> CompressedMatrix {
        let mut triplets = Vec::with_capacity(self.values.len());
        let mut rank = 0usize;
        for r in 0..self.rows {
            for c in 0..self.cols {
                let bit = r as usize * self.cols as usize + c as usize;
                if self.mask[bit / 64] & (1u64 << (bit % 64)) != 0 {
                    triplets.push((r, c, self.values[rank]));
                    rank += 1;
                }
            }
        }
        CompressedMatrix::from_triplets(self.rows, self.cols, &triplets, order)
            .expect("bitmap positions are unique and in range")
    }

    /// Whether bitmap beats CSR on footprint for this matrix.
    pub fn is_smaller_than_csr(&self) -> bool {
        let csr = self.nnz() as u64 * 4 + (self.rows as u64 + 1) * 4;
        self.compressed_size_bytes() < csr
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn sample() -> CompressedMatrix {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        gen::random(17, 23, 0.4, MajorOrder::Row, &mut rng)
    }

    #[test]
    fn roundtrip_csr_bitmap_csr() {
        let m = sample();
        let bm = BitmapMatrix::from_compressed(&m);
        assert_eq!(bm.nnz(), m.nnz());
        assert_eq!(bm.to_compressed(MajorOrder::Row), m);
    }

    #[test]
    fn get_matches_source() {
        let m = sample();
        let bm = BitmapMatrix::from_compressed(&m);
        for r in 0..m.rows() {
            for c in 0..m.cols() {
                assert_eq!(bm.get(r, c), m.get(r, c), "mismatch at ({r},{c})");
            }
        }
    }

    #[test]
    fn footprint_crossover_with_density() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let dense = gen::random(64, 64, 0.5, MajorOrder::Row, &mut rng);
        let sparse = gen::random(64, 64, 0.02, MajorOrder::Row, &mut rng);
        assert!(BitmapMatrix::from_compressed(&dense).is_smaller_than_csr());
        assert!(!BitmapMatrix::from_compressed(&sparse).is_smaller_than_csr());
    }

    #[test]
    fn empty_and_full_extremes() {
        let empty = CompressedMatrix::zero(5, 5, MajorOrder::Row);
        let bm = BitmapMatrix::from_compressed(&empty);
        assert_eq!(bm.nnz(), 0);
        assert_eq!(bm.get(2, 2), 0.0);

        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let full = gen::random(6, 6, 1.0, MajorOrder::Row, &mut rng);
        let bm = BitmapMatrix::from_compressed(&full);
        assert_eq!(bm.nnz(), 36);
        assert!(bm.is_set(5, 5));
    }

    #[test]
    fn intersect_count_matches_dense_walk() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let a = BitmapMatrix::from_compressed(&gen::random(19, 31, 0.3, MajorOrder::Row, &mut rng));
        let b = BitmapMatrix::from_compressed(&gen::random(19, 31, 0.5, MajorOrder::Row, &mut rng));
        let mut want = 0u64;
        for r in 0..a.rows() {
            for c in 0..a.cols() {
                if a.is_set(r, c) && b.is_set(r, c) {
                    want += 1;
                }
            }
        }
        assert_eq!(a.intersect_count(&b), want);
        assert_eq!(b.intersect_count(&a), want);
        assert_eq!(a.intersect_count(&a), a.nnz() as u64);
    }

    #[test]
    #[should_panic(expected = "identical dimensions")]
    fn intersect_count_rejects_dimension_mismatch() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let a = BitmapMatrix::from_compressed(&gen::random(4, 4, 0.5, MajorOrder::Row, &mut rng));
        let b = BitmapMatrix::from_compressed(&gen::random(4, 5, 0.5, MajorOrder::Row, &mut rng));
        let _ = a.intersect_count(&b);
    }

    #[test]
    fn conversion_preserves_across_orders() {
        let m = sample();
        let bm = BitmapMatrix::from_compressed(&m);
        let csc = bm.to_compressed(MajorOrder::Col);
        assert!(csc.approx_eq(&m, 0.0));
    }
}
