//! Error type for sparse-format operations.

/// Errors produced while constructing or validating sparse matrices.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FormatError {
    /// A coordinate lies outside the matrix dimensions.
    CoordOutOfBounds {
        /// Row of the offending entry.
        row: u32,
        /// Column of the offending entry.
        col: u32,
        /// Number of rows in the matrix.
        rows: u32,
        /// Number of columns in the matrix.
        cols: u32,
    },
    /// The same (row, col) position appears more than once.
    DuplicateCoord {
        /// Row of the duplicated entry.
        row: u32,
        /// Column of the duplicated entry.
        col: u32,
    },
    /// The pointer array is malformed (wrong length or non-monotonic).
    MalformedPointers {
        /// Human-readable description of the defect.
        detail: String,
    },
    /// Fiber coordinates are not strictly increasing.
    UnsortedFiber {
        /// Index of the fiber with unsorted coordinates.
        fiber: u32,
    },
    /// The inner dimensions of a matrix multiplication do not agree.
    DimensionMismatch {
        /// Columns of the left operand.
        left_cols: u32,
        /// Rows of the right operand.
        right_rows: u32,
    },
    /// The operation requires a different major order than the operand has.
    WrongMajorOrder {
        /// The order the operation expects.
        expected: crate::MajorOrder,
        /// The order the operand actually has.
        actual: crate::MajorOrder,
    },
}

impl std::fmt::Display for FormatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::CoordOutOfBounds { row, col, rows, cols } => write!(
                f,
                "coordinate ({row}, {col}) outside a {rows}x{cols} matrix"
            ),
            Self::DuplicateCoord { row, col } => {
                write!(f, "duplicate coordinate ({row}, {col})")
            }
            Self::MalformedPointers { detail } => {
                write!(f, "malformed pointer vector: {detail}")
            }
            Self::UnsortedFiber { fiber } => {
                write!(f, "fiber {fiber} has unsorted coordinates")
            }
            Self::DimensionMismatch { left_cols, right_rows } => write!(
                f,
                "inner dimensions disagree: left has {left_cols} columns, right has {right_rows} rows"
            ),
            Self::WrongMajorOrder { expected, actual } => write!(
                f,
                "operation expects a {expected} matrix but got {actual}"
            ),
        }
    }
}

impl std::error::Error for FormatError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MajorOrder;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = FormatError::CoordOutOfBounds {
            row: 5,
            col: 6,
            rows: 2,
            cols: 3,
        };
        assert_eq!(format!("{e}"), "coordinate (5, 6) outside a 2x3 matrix");
        let e = FormatError::DuplicateCoord { row: 1, col: 1 };
        assert!(format!("{e}").contains("duplicate"));
        let e = FormatError::DimensionMismatch {
            left_cols: 4,
            right_rows: 5,
        };
        assert!(format!("{e}").contains("inner dimensions"));
        let e = FormatError::WrongMajorOrder {
            expected: MajorOrder::Row,
            actual: MajorOrder::Col,
        };
        assert!(format!("{e}").contains("row-major"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FormatError>();
    }
}
