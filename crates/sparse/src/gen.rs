//! Random sparse-matrix generators for workloads and tests.
//!
//! All generators are deterministic given an `Rng`, so the workload suite is
//! reproducible (`rand_chacha` seeding happens in `flexagon-dnn`).

use crate::{CompressedMatrix, Element, Fiber, MajorOrder, Value};
use rand::Rng;

/// Uniform unstructured sparsity: each entry is non-zero with probability
/// `density`, values uniform in `[0.5, 1.5)`.
///
/// Uses geometric gap-skipping, so the cost is proportional to the number of
/// non-zeros rather than `rows * cols`, which matters for the very sparse
/// layers in the suite (down to 0.04% density's complement).
///
/// # Panics
///
/// Panics if `density` is not within `[0, 1]`.
pub fn random<R: Rng + ?Sized>(
    rows: u32,
    cols: u32,
    density: f64,
    order: MajorOrder,
    rng: &mut R,
) -> CompressedMatrix {
    assert!((0.0..=1.0).contains(&density), "density must lie in [0, 1]");
    let majors = match order {
        MajorOrder::Row => rows,
        MajorOrder::Col => cols,
    };
    let minors = match order {
        MajorOrder::Row => cols,
        MajorOrder::Col => rows,
    } as u64;
    let mut fibers = Vec::with_capacity(majors as usize);
    for _ in 0..majors {
        fibers.push(random_fiber(minors, density, rng));
    }
    CompressedMatrix::from_fibers(rows, cols, order, fibers)
        .expect("generated fibers are always in range")
}

/// Generates a single sorted fiber over `[0, minors)` with Bernoulli
/// `density` occupancy via geometric skips.
fn random_fiber<R: Rng + ?Sized>(minors: u64, density: f64, rng: &mut R) -> Fiber {
    let mut fiber = Fiber::new();
    if density <= 0.0 || minors == 0 {
        return fiber;
    }
    if density >= 1.0 {
        for c in 0..minors {
            fiber.push(Element::new(c as u32, value_in_range(rng)));
        }
        return fiber;
    }
    let log1m = (1.0 - density).ln();
    let mut pos: u64 = 0;
    loop {
        // Geometric(p) gap: number of zeros before the next non-zero.
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        let skip = (u.ln() / log1m).floor() as u64;
        pos = pos.saturating_add(skip);
        if pos >= minors {
            break;
        }
        fiber.push(Element::new(pos as u32, value_in_range(rng)));
        pos += 1;
        if pos >= minors {
            break;
        }
    }
    fiber
}

/// Exactly `nnz` non-zeros placed uniformly at random (no duplicates).
///
/// # Panics
///
/// Panics if `nnz > rows * cols`.
pub fn random_with_nnz<R: Rng + ?Sized>(
    rows: u32,
    cols: u32,
    nnz: usize,
    order: MajorOrder,
    rng: &mut R,
) -> CompressedMatrix {
    let total = rows as u64 * cols as u64;
    assert!(
        nnz as u64 <= total,
        "cannot place {nnz} non-zeros in {total} cells"
    );
    // Floyd's algorithm for a uniform sample without replacement. Cells are
    // collected in insertion order (not HashSet iteration order, whose
    // per-instance hash seed would make the value assignment
    // nondeterministic for a fixed rng).
    let mut chosen = std::collections::HashSet::with_capacity(nnz);
    let mut cells = Vec::with_capacity(nnz);
    for j in (total - nnz as u64)..total {
        let t = rng.gen_range(0..=j);
        let cell = if chosen.contains(&t) { j } else { t };
        chosen.insert(cell);
        cells.push(cell);
    }
    let triplets: Vec<(u32, u32, Value)> = cells
        .into_iter()
        .map(|cell| {
            let r = (cell / cols as u64) as u32;
            let c = (cell % cols as u64) as u32;
            (r, c, value_in_range(rng))
        })
        .collect();
    CompressedMatrix::from_triplets(rows, cols, &triplets, order)
        .expect("sampled cells are unique and in range")
}

/// Band matrix: non-zeros only where `|row - col| <= half_bandwidth`.
///
/// Handy for exercising dataflows on structured sparsity, where Gustavson's
/// leader-follower intersection has perfect locality.
pub fn banded<R: Rng + ?Sized>(
    n: u32,
    half_bandwidth: u32,
    density_in_band: f64,
    order: MajorOrder,
    rng: &mut R,
) -> CompressedMatrix {
    let mut triplets = Vec::new();
    for r in 0..n {
        let lo = r.saturating_sub(half_bandwidth);
        let hi = (r + half_bandwidth).min(n - 1);
        for c in lo..=hi {
            if rng.gen_bool(density_in_band) {
                triplets.push((r, c, value_in_range(rng)));
            }
        }
    }
    CompressedMatrix::from_triplets(n, n, &triplets, order)
        .expect("band coordinates are always in range")
}

/// Identity-like diagonal matrix with the given `value` on the diagonal.
pub fn diagonal(n: u32, value: Value, order: MajorOrder) -> CompressedMatrix {
    let triplets: Vec<(u32, u32, Value)> = (0..n).map(|i| (i, i, value)).collect();
    CompressedMatrix::from_triplets(n, n, &triplets, order)
        .expect("diagonal coordinates are always in range")
}

/// Block-sparse matrix: a grid of `block x block` tiles, each fully dense
/// with probability `block_density`.
///
/// Mimics structured pruning; useful in ablations because it concentrates
/// reuse into block rows/columns.
pub fn block_sparse<R: Rng + ?Sized>(
    rows: u32,
    cols: u32,
    block: u32,
    block_density: f64,
    order: MajorOrder,
    rng: &mut R,
) -> CompressedMatrix {
    assert!(block > 0, "block size must be positive");
    let mut triplets = Vec::new();
    let mut br = 0;
    while br < rows {
        let mut bc = 0;
        while bc < cols {
            if rng.gen_bool(block_density) {
                for r in br..(br + block).min(rows) {
                    for c in bc..(bc + block).min(cols) {
                        triplets.push((r, c, value_in_range(rng)));
                    }
                }
            }
            bc += block;
        }
        br += block;
    }
    CompressedMatrix::from_triplets(rows, cols, &triplets, order)
        .expect("block coordinates are always in range")
}

/// R-MAT (recursive matrix) power-law graph generator.
///
/// SpGEMM accelerator evaluations (SpArch, GAMMA, OuterSPACE) use
/// SuiteSparse graphs whose degree distributions are highly skewed; R-MAT
/// reproduces that skew synthetically. Each of `edges` non-zeros picks its
/// cell by descending a 2x2 recursive partition with probabilities
/// `(a, b, c, d)`; duplicates are accumulated into a single entry with the
/// count as its value (standard multigraph collapsing).
///
/// # Panics
///
/// Panics if `scale >= 31` or the probabilities are not positive and
/// summing to ~1.
pub fn rmat<R: Rng + ?Sized>(
    scale: u32,
    edges: usize,
    probs: (f64, f64, f64, f64),
    order: MajorOrder,
    rng: &mut R,
) -> CompressedMatrix {
    assert!(scale < 31, "scale must keep dimensions within u32");
    let (a, b, c, d) = probs;
    assert!(
        a > 0.0 && b >= 0.0 && c >= 0.0 && d > 0.0,
        "partition probabilities must be non-negative with a, d positive"
    );
    let sum = a + b + c + d;
    assert!(
        (sum - 1.0).abs() < 1e-6,
        "probabilities must sum to 1, got {sum}"
    );
    let n = 1u32 << scale;
    let mut cells: std::collections::HashMap<(u32, u32), u32> = std::collections::HashMap::new();
    for _ in 0..edges {
        let (mut r, mut col) = (0u32, 0u32);
        for level in (0..scale).rev() {
            let x: f64 = rng.gen();
            let (dr, dc) = if x < a {
                (0, 0)
            } else if x < a + b {
                (0, 1)
            } else if x < a + b + c {
                (1, 0)
            } else {
                (1, 1)
            };
            r |= dr << level;
            col |= dc << level;
        }
        *cells.entry((r, col)).or_insert(0) += 1;
    }
    let triplets: Vec<(u32, u32, Value)> = cells
        .into_iter()
        .map(|((r, c), count)| (r, c, count as Value))
        .collect();
    CompressedMatrix::from_triplets(n, n, &triplets, order).expect("rmat cells are always in range")
}

/// One named SpGEMM scenario: an `(A, B)` operand pair drawn from the
/// generator families above.
///
/// Scenario sweeps complement the DNN layer suite with the sparsity
/// *structures* unstructured-random layers never produce — power-law skew
/// (R-MAT), diagonal locality (banded), structured pruning (block-sparse)
/// and exact-budget extremes (`random_with_nnz`) — which is exactly where
/// feature-based dataflow selection is hardest.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Scenario name, `family/shape` (stable across runs; used as a report
    /// row label).
    pub name: String,
    /// Left operand.
    pub a: CompressedMatrix,
    /// Right operand.
    pub b: CompressedMatrix,
}

impl Scenario {
    fn new(name: impl Into<String>, a: CompressedMatrix, b: CompressedMatrix) -> Self {
        Self {
            name: name.into(),
            a,
            b,
        }
    }
}

/// The standard scenario sweep: a fixed list of named `(A, B)` pairs
/// covering [`rmat`], [`banded`], [`block_sparse`] and [`random_with_nnz`]
/// across shapes that stress different dataflow bottlenecks (graph
/// squaring, band chains, pruned blocks, skewed tall/flat operands).
///
/// Deterministic given `rng`; every pair is dimension-compatible
/// (`a.cols() == b.rows()`).
pub fn scenario_sweep<R: Rng + ?Sized>(rng: &mut R) -> Vec<Scenario> {
    let mut out = Vec::new();

    // Graph squaring (two-hop neighbourhoods): the canonical SpGEMM graph
    // kernel, with Graph500 skew.
    for (scale, edges) in [(8u32, 4096usize), (9, 8192), (10, 20000)] {
        let g = rmat(scale, edges, (0.57, 0.19, 0.19, 0.05), MajorOrder::Row, rng);
        out.push(Scenario::new(
            format!("rmat/square/2^{scale}x{edges}"),
            g.clone(),
            g,
        ));
    }

    // Band-chain products: structured locality, output stays banded.
    for (n, hb, d) in [(512u32, 8u32, 0.7), (1024, 4, 0.5), (768, 32, 0.3)] {
        let a = banded(n, hb, d, MajorOrder::Row, rng);
        let b = banded(n, hb, d, MajorOrder::Row, rng);
        out.push(Scenario::new(format!("banded/chain/{n}w{hb}"), a, b));
    }

    // Structured pruning: dense tiles concentrate reuse into block rows.
    for (m, k, n, blk, d) in [
        (256u32, 256u32, 192u32, 16u32, 0.15),
        (384, 192, 384, 8, 0.25),
    ] {
        let a = block_sparse(m, k, blk, d, MajorOrder::Row, rng);
        let b = block_sparse(k, n, blk, d, MajorOrder::Row, rng);
        out.push(Scenario::new(format!("block/{m}x{k}x{n}b{blk}"), a, b));
    }

    // Exact-nnz extremes: tiny-A single-tile shapes (IP's best case), a
    // tall-thin times short-wide outer-product shape, and a balanced
    // mid-density square.
    let cases: [(&str, u32, u32, u32, usize, usize); 3] = [
        ("tiny_a", 8, 64, 1024, 48, 8192),
        ("tall_flat", 1024, 48, 1024, 4096, 4096),
        ("balanced", 256, 256, 256, 6000, 6000),
    ];
    for (label, m, k, n, nnz_a, nnz_b) in cases {
        let a = random_with_nnz(m, k, nnz_a, MajorOrder::Row, rng);
        let b = random_with_nnz(k, n, nnz_b, MajorOrder::Row, rng);
        out.push(Scenario::new(format!("nnz/{label}/{m}x{k}x{n}"), a, b));
    }

    // Cross-family products: graph times band (graph smoothing) and
    // blocks times unstructured (pruned weights, dense-ish activations).
    let g = rmat(9, 8192, (0.57, 0.19, 0.19, 0.05), MajorOrder::Row, rng);
    let band = banded(512, 16, 0.5, MajorOrder::Row, rng);
    out.push(Scenario::new("mixed/rmat_x_banded/512", g, band));
    let blocks = block_sparse(192, 256, 16, 0.2, MajorOrder::Row, rng);
    let act = random_with_nnz(256, 384, 24576, MajorOrder::Row, rng);
    out.push(Scenario::new(
        "mixed/block_x_dense/192x256x384",
        blocks,
        act,
    ));

    out
}

/// The adversarial scenario sweep: named `(A, B)` pairs built from the
/// structure families the random generators never emit — maximally skewed
/// rows/columns, all-empty fibers, and dimensions crossing the `u16` index
/// boundary with tiny nnz (stressing index-width assumptions without
/// boundary-sized allocations).
///
/// Separate from [`scenario_sweep`] on purpose: that sweep feeds the
/// mapper-accuracy CI gate and must not change; this one feeds robustness
/// tests.
///
/// All values are small integers, so every product and partial sum is
/// exactly representable in `f32` far below 2^24 — any accumulation order
/// produces identical bits, which lets downstream tests pin engine output
/// **bit-identical** to the reference kernels instead of approximately
/// equal.
///
/// Deterministic given `rng`; every pair is dimension-compatible.
pub fn adversarial_sweep<R: Rng + ?Sized>(rng: &mut R) -> Vec<Scenario> {
    /// Uniform scatter of `nnz` distinct cells with integer values in 1..9.
    fn int_random<R: Rng + ?Sized>(
        rows: u32,
        cols: u32,
        nnz: usize,
        rng: &mut R,
    ) -> CompressedMatrix {
        assert!(nnz as u64 <= u64::from(rows) * u64::from(cols));
        let mut cells = std::collections::BTreeSet::new();
        while cells.len() < nnz {
            cells.insert((rng.gen_range(0..rows), rng.gen_range(0..cols)));
        }
        let triplets: Vec<(u32, u32, Value)> = cells
            .into_iter()
            .map(|(r, c)| (r, c, rng.gen_range(1..9) as Value))
            .collect();
        CompressedMatrix::from_triplets(rows, cols, &triplets, MajorOrder::Row)
            .expect("distinct in-range cells")
    }

    let mut out = Vec::new();

    // Maximal row skew: one fully dense row in A, everything else sparse
    // scatter — stresses row splitting and per-fiber accumulator sizing.
    {
        let mut triplets: Vec<(u32, u32, Value)> =
            (0..128).map(|c| (17, c, (c % 7 + 1) as Value)).collect();
        for r in (0..96).step_by(9) {
            if r != 17 {
                triplets.push((r, rng.gen_range(0..128), rng.gen_range(1..9) as Value));
            }
        }
        let a = CompressedMatrix::from_triplets(96, 128, &triplets, MajorOrder::Row)
            .expect("in-range skew triplets");
        let b = int_random(128, 64, 512, rng);
        out.push(Scenario::new("skew/one_dense_row/96x128x64", a, b));
    }

    // Maximal column skew in B — the mirror case, which the N-stationary
    // dataflows see as row skew of the transposed problem.
    {
        let a = int_random(64, 96, 384, rng);
        let mut triplets: Vec<(u32, u32, Value)> =
            (0..96).map(|r| (r, 11, (r % 5 + 1) as Value)).collect();
        for c in (0..48).step_by(7) {
            if c != 11 {
                triplets.push((rng.gen_range(0..96), c, rng.gen_range(1..9) as Value));
            }
        }
        triplets.sort_unstable_by_key(|&(r, c, _)| (r, c));
        triplets.dedup_by_key(|&mut (r, c, _)| (r, c));
        let b = CompressedMatrix::from_triplets(96, 48, &triplets, MajorOrder::Row)
            .expect("deduped in-range triplets");
        out.push(Scenario::new("skew/one_dense_col/64x96x48", a, b));
    }

    // All-empty fibers: the zero matrix on either side, and striped
    // operands where seven of every eight fibers are empty.
    out.push(Scenario::new(
        "empty/zero_a/64x96x48",
        CompressedMatrix::zero(64, 96, MajorOrder::Row),
        int_random(96, 48, 256, rng),
    ));
    out.push(Scenario::new(
        "empty/zero_b/64x96x48",
        int_random(64, 96, 256, rng),
        CompressedMatrix::zero(96, 48, MajorOrder::Row),
    ));
    {
        let a_triplets: Vec<(u32, u32, Value)> = (0..128)
            .step_by(8)
            .flat_map(|r| {
                (0..96)
                    .step_by(5)
                    .map(move |c| (r, c, ((r + c) % 6 + 1) as Value))
            })
            .collect();
        let a = CompressedMatrix::from_triplets(128, 96, &a_triplets, MajorOrder::Row)
            .expect("in-range striped triplets");
        let b_triplets: Vec<(u32, u32, Value)> = (0..96)
            .flat_map(|r| {
                (0..64)
                    .step_by(8)
                    .map(move |c| (r, c, ((r * 3 + c) % 6 + 1) as Value))
            })
            .collect();
        let b = CompressedMatrix::from_triplets(96, 64, &b_triplets, MajorOrder::Row)
            .expect("in-range striped triplets");
        out.push(Scenario::new("empty/striped/128x96x64", a, b));
    }

    // Index-boundary dims: row and column counts just past u16::MAX with a
    // hundred-odd nonzeros — any u16 truncation in an index path corrupts
    // coordinates loudly, while allocations stay small.
    {
        let mut a = int_random(65_537, 32, 96, rng);
        // Pin the extreme row so the boundary is actually exercised.
        let mut triplets: Vec<(u32, u32, Value)> = a
            .fibers()
            .flat_map(|(r, f)| {
                f.iter()
                    .map(move |e| (r, e.coord, e.value))
                    .collect::<Vec<_>>()
            })
            .filter(|&(r, _, _)| r != 65_536)
            .collect();
        triplets.push((65_536, 7, 3.0));
        a = CompressedMatrix::from_triplets(65_537, 32, &triplets, MajorOrder::Row)
            .expect("in-range boundary triplets");
        let b = int_random(32, 16, 128, rng);
        out.push(Scenario::new("boundary/tall/65537x32x16", a, b));
    }
    {
        let a = int_random(24, 65_537, 128, rng);
        let b = int_random(65_537, 12, 128, rng);
        out.push(Scenario::new("boundary/wide_k/24x65537x12", a, b));
    }

    out
}

fn value_in_range<R: Rng + ?Sized>(rng: &mut R) -> Value {
    // Uniform in [0.5, 1.5): keeps products well-conditioned so functional
    // checks against the dense reference stay within tight tolerances.
    rng.gen_range(0.5..1.5)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(42)
    }

    #[test]
    fn random_density_is_close() {
        let m = random(200, 200, 0.3, MajorOrder::Row, &mut rng());
        let d = m.density();
        assert!((d - 0.3).abs() < 0.03, "density {d} too far from 0.3");
        m.validate().unwrap();
    }

    #[test]
    fn random_zero_density_is_empty() {
        let m = random(10, 10, 0.0, MajorOrder::Row, &mut rng());
        assert_eq!(m.nnz(), 0);
    }

    #[test]
    fn random_full_density_is_dense() {
        let m = random(8, 8, 1.0, MajorOrder::Col, &mut rng());
        assert_eq!(m.nnz(), 64);
    }

    #[test]
    fn random_extreme_sparsity_is_cheap_and_valid() {
        let m = random(1000, 1000, 0.0004, MajorOrder::Row, &mut rng());
        m.validate().unwrap();
        assert!(m.nnz() < 5000);
    }

    #[test]
    fn random_is_reproducible() {
        let a = random(50, 50, 0.2, MajorOrder::Row, &mut rng());
        let b = random(50, 50, 0.2, MajorOrder::Row, &mut rng());
        assert_eq!(a, b);
    }

    #[test]
    fn random_with_nnz_exact_count() {
        let m = random_with_nnz(30, 40, 123, MajorOrder::Row, &mut rng());
        assert_eq!(m.nnz(), 123);
        m.validate().unwrap();
    }

    #[test]
    fn random_with_nnz_is_deterministic_including_values() {
        // Regression: values used to be assigned in HashSet iteration
        // order, which varies per instance.
        let x = random_with_nnz(30, 40, 200, MajorOrder::Row, &mut rng());
        let y = random_with_nnz(30, 40, 200, MajorOrder::Row, &mut rng());
        assert_eq!(x, y);
    }

    #[test]
    fn random_with_nnz_can_fill_completely() {
        let m = random_with_nnz(5, 5, 25, MajorOrder::Col, &mut rng());
        assert_eq!(m.nnz(), 25);
    }

    #[test]
    #[should_panic(expected = "cannot place")]
    fn random_with_nnz_rejects_overfull() {
        random_with_nnz(2, 2, 5, MajorOrder::Row, &mut rng());
    }

    #[test]
    fn banded_respects_bandwidth() {
        let m = banded(20, 2, 1.0, MajorOrder::Row, &mut rng());
        for (r, fiber) in m.fibers() {
            for e in fiber.iter() {
                assert!(
                    (e.coord as i64 - r as i64).abs() <= 2,
                    "element ({r},{}) outside band",
                    e.coord
                );
            }
        }
    }

    #[test]
    fn diagonal_has_n_entries() {
        let m = diagonal(7, 2.0, MajorOrder::Row);
        assert_eq!(m.nnz(), 7);
        assert_eq!(m.get(3, 3), 2.0);
        assert_eq!(m.get(3, 4), 0.0);
    }

    #[test]
    fn block_sparse_full_blocks() {
        let m = block_sparse(8, 8, 4, 1.0, MajorOrder::Row, &mut rng());
        assert_eq!(m.nnz(), 64);
    }

    #[test]
    fn values_are_in_expected_range() {
        let m = random(50, 50, 0.5, MajorOrder::Row, &mut rng());
        for e in m.elements() {
            assert!((0.5..1.5).contains(&e.value));
        }
    }

    #[test]
    fn rmat_dimensions_and_count() {
        let m = rmat(
            8,
            2000,
            (0.57, 0.19, 0.19, 0.05),
            MajorOrder::Row,
            &mut rng(),
        );
        assert_eq!(m.rows(), 256);
        assert_eq!(m.cols(), 256);
        assert!(m.nnz() <= 2000, "duplicates collapse");
        assert!(m.nnz() > 1000, "most edges are distinct at this density");
        m.validate().unwrap();
    }

    #[test]
    fn rmat_is_skewed() {
        // With standard Graph500 probabilities, the max row degree far
        // exceeds the mean — that is the point of the generator.
        let m = rmat(
            9,
            8000,
            (0.57, 0.19, 0.19, 0.05),
            MajorOrder::Row,
            &mut rng(),
        );
        let mean = m.nnz() as f64 / m.rows() as f64;
        let max = (0..m.major_dim()).map(|r| m.fiber_len(r)).max().unwrap();
        assert!(
            max as f64 > 4.0 * mean,
            "max degree {max} not skewed vs mean {mean:.1}"
        );
    }

    #[test]
    fn rmat_uniform_probs_behave_like_uniform() {
        let m = rmat(
            6,
            500,
            (0.25, 0.25, 0.25, 0.25),
            MajorOrder::Row,
            &mut rng(),
        );
        m.validate().unwrap();
        assert!(m.nnz() > 400);
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn rmat_rejects_bad_probs() {
        rmat(4, 10, (0.9, 0.9, 0.1, 0.1), MajorOrder::Row, &mut rng());
    }

    #[test]
    fn scenario_sweep_is_well_formed_and_deterministic() {
        let sweep = scenario_sweep(&mut rng());
        assert!(sweep.len() >= 10, "sweep covers all four families");
        let mut names = std::collections::HashSet::new();
        for s in &sweep {
            assert!(names.insert(s.name.clone()), "duplicate name {}", s.name);
            assert_eq!(s.a.cols(), s.b.rows(), "{}: dims incompatible", s.name);
            s.a.validate().unwrap();
            s.b.validate().unwrap();
            assert!(s.a.nnz() > 0 && s.b.nnz() > 0, "{}: empty operand", s.name);
        }
        for family in ["rmat/", "banded/", "block/", "nnz/", "mixed/"] {
            assert!(
                sweep.iter().any(|s| s.name.starts_with(family)),
                "family {family} missing"
            );
        }
        let again = scenario_sweep(&mut rng());
        assert_eq!(sweep.len(), again.len());
        for (x, y) in sweep.iter().zip(&again) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.a, y.a);
            assert_eq!(x.b, y.b);
        }
    }

    #[test]
    fn adversarial_sweep_is_well_formed_and_deterministic() {
        let sweep = adversarial_sweep(&mut rng());
        let mut names = std::collections::HashSet::new();
        for s in &sweep {
            assert!(names.insert(s.name.clone()), "duplicate name {}", s.name);
            assert_eq!(s.a.cols(), s.b.rows(), "{}: dims incompatible", s.name);
            s.a.validate().unwrap();
            s.b.validate().unwrap();
            for m in [&s.a, &s.b] {
                for v in m.values() {
                    assert_eq!(v.fract(), 0.0, "{}: non-integer value {v}", s.name);
                    assert!((1.0..=8.0).contains(v), "{}: value {v} out of band", s.name);
                }
            }
        }
        for family in ["skew/", "empty/", "boundary/"] {
            assert!(
                sweep.iter().any(|s| s.name.starts_with(family)),
                "family {family} missing"
            );
        }
        // The boundary family really crosses the u16 index boundary.
        let tall = sweep
            .iter()
            .find(|s| s.name.starts_with("boundary/tall"))
            .expect("tall boundary scenario");
        assert!(tall.a.rows() > u32::from(u16::MAX));
        assert!(tall.a.fibers().any(|(r, f)| r == 65_536 && !f.is_empty()));
        let again = adversarial_sweep(&mut rng());
        assert_eq!(sweep.len(), again.len());
        for (x, y) in sweep.iter().zip(&again) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.a, y.a);
            assert_eq!(x.b, y.b);
        }
    }
}
