//! K-way merge with accumulation — the functional behaviour of the MRN.
//!
//! A node of the merger-reduction network compares the coordinates of its two
//! input elements: on a match it adds the values, otherwise it forwards the
//! element with the lower coordinate (paper §3.2.2). Applied over a tree this
//! is exactly a k-way merge of sorted fibers that accumulates colliding
//! coordinates. These helpers implement that semantics in software; the
//! `flexagon-noc` crate layers cycle accounting on top.

#[cfg(test)]
use crate::Value;
use crate::{Element, Fiber, FiberView};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Outcome of a merge: the merged fiber plus operation counts.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MergeStats {
    /// Number of coordinate comparisons performed.
    pub comparisons: u64,
    /// Number of value additions (coordinate collisions).
    pub additions: u64,
}

/// Merges two sorted fibers, accumulating values on coordinate collisions.
pub fn merge_two(a: FiberView<'_>, b: FiberView<'_>) -> (Fiber, MergeStats) {
    let mut out = Fiber::with_capacity(a.len() + b.len());
    let mut stats = MergeStats::default();
    let (mut i, mut j) = (0, 0);
    let (ae, be) = (a.elements(), b.elements());
    while i < ae.len() && j < be.len() {
        stats.comparisons += 1;
        match ae[i].coord.cmp(&be[j].coord) {
            std::cmp::Ordering::Less => {
                out.push(ae[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(be[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                stats.additions += 1;
                out.push(Element::new(ae[i].coord, ae[i].value + be[j].value));
                i += 1;
                j += 1;
            }
        }
    }
    for &e in &ae[i..] {
        out.push(e);
    }
    for &e in &be[j..] {
        out.push(e);
    }
    (out, stats)
}

/// Merges any number of sorted fibers with accumulation.
///
/// Implemented with a binary heap so merging `F` fibers of `E` total
/// elements costs `O(E log F)` in software regardless of `F`.
///
/// ```
/// use flexagon_sparse::{Element, Fiber, merge};
/// let a = Fiber::from_sorted(vec![Element::new(0, 1.0), Element::new(2, 1.0)]);
/// let b = Fiber::from_sorted(vec![Element::new(2, 2.0), Element::new(3, 1.0)]);
/// let (m, _) = merge::merge_accumulate(&[a.as_view(), b.as_view()]);
/// assert_eq!(m.get(2), Some(3.0));
/// assert_eq!(m.len(), 3);
/// ```
pub fn merge_accumulate(fibers: &[FiberView<'_>]) -> (Fiber, MergeStats) {
    let mut stats = MergeStats::default();
    let total: usize = fibers.iter().map(|f| f.len()).sum();
    let mut out = Fiber::with_capacity(total);
    // Heap of (coord, source fiber, position within fiber).
    let mut heap: BinaryHeap<Reverse<(u32, usize, usize)>> = fibers
        .iter()
        .enumerate()
        .filter(|(_, f)| !f.is_empty())
        .map(|(src, f)| Reverse((f.elements()[0].coord, src, 0)))
        .collect();
    let mut pending: Option<Element> = None;
    while let Some(Reverse((coord, src, pos))) = heap.pop() {
        stats.comparisons += 1;
        let value = fibers[src].elements()[pos].value;
        match pending {
            Some(ref mut p) if p.coord == coord => {
                p.value += value;
                stats.additions += 1;
            }
            Some(p) => {
                out.push(p);
                pending = Some(Element::new(coord, value));
            }
            None => pending = Some(Element::new(coord, value)),
        }
        if pos + 1 < fibers[src].len() {
            heap.push(Reverse((
                fibers[src].elements()[pos + 1].coord,
                src,
                pos + 1,
            )));
        }
    }
    if let Some(p) = pending {
        out.push(p);
    }
    (out, stats)
}

/// Total elements across a set of fibers (the merge's input volume).
pub fn input_volume(fibers: &[FiberView<'_>]) -> usize {
    fibers.iter().map(|f| f.len()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(pairs: &[(u32, Value)]) -> Fiber {
        Fiber::from_sorted(pairs.iter().map(|&(c, v)| Element::new(c, v)).collect())
    }

    #[test]
    fn merge_two_disjoint() {
        let a = f(&[(0, 1.0), (2, 2.0)]);
        let b = f(&[(1, 3.0), (5, 4.0)]);
        let (m, stats) = merge_two(a.as_view(), b.as_view());
        assert_eq!(m.len(), 4);
        assert_eq!(stats.additions, 0);
        assert_eq!(m.get(5), Some(4.0));
    }

    #[test]
    fn merge_two_accumulates_collisions() {
        let a = f(&[(1, 1.0), (2, 2.0)]);
        let b = f(&[(1, 10.0), (3, 3.0)]);
        let (m, stats) = merge_two(a.as_view(), b.as_view());
        assert_eq!(m.get(1), Some(11.0));
        assert_eq!(stats.additions, 1);
    }

    #[test]
    fn merge_two_with_empty_is_identity() {
        let a = f(&[(1, 1.0)]);
        let (m, _) = merge_two(a.as_view(), Fiber::new().as_view());
        assert_eq!(m, a);
    }

    #[test]
    fn merge_accumulate_empty_input() {
        let (m, stats) = merge_accumulate(&[]);
        assert!(m.is_empty());
        assert_eq!(stats, MergeStats::default());
    }

    #[test]
    fn merge_accumulate_matches_pairwise() {
        let a = f(&[(0, 1.0), (4, 1.0)]);
        let b = f(&[(0, 2.0), (3, 1.0)]);
        let c = f(&[(3, 5.0), (4, 5.0)]);
        let (kway, _) = merge_accumulate(&[a.as_view(), b.as_view(), c.as_view()]);
        let (ab, _) = merge_two(a.as_view(), b.as_view());
        let (abc, _) = merge_two(ab.as_view(), c.as_view());
        assert_eq!(kway, abc);
    }

    #[test]
    fn merge_accumulate_many_copies_of_same_fiber() {
        let a = f(&[(0, 1.0), (1, 1.0)]);
        let views: Vec<_> = std::iter::repeat_n(a.as_view(), 8).collect();
        let (m, stats) = merge_accumulate(&views);
        assert_eq!(m.get(0), Some(8.0));
        assert_eq!(m.get(1), Some(8.0));
        assert_eq!(stats.additions, 14); // 7 per coordinate
    }

    #[test]
    fn merge_preserves_sortedness() {
        let a = f(&[(5, 1.0), (9, 1.0)]);
        let b = f(&[(0, 1.0), (7, 1.0)]);
        let (m, _) = merge_accumulate(&[a.as_view(), b.as_view()]);
        let coords: Vec<u32> = m.iter().map(|e| e.coord).collect();
        let mut sorted = coords.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(coords, sorted);
    }

    #[test]
    fn input_volume_sums_lengths() {
        let a = f(&[(0, 1.0)]);
        let b = f(&[(0, 1.0), (1, 1.0)]);
        assert_eq!(input_volume(&[a.as_view(), b.as_view()]), 3);
    }
}
