//! K-way merge with accumulation — the functional behaviour of the MRN.
//!
//! A node of the merger-reduction network compares the coordinates of its two
//! input elements: on a match it adds the values, otherwise it forwards the
//! element with the lower coordinate (paper §3.2.2). Applied over a tree this
//! is exactly a k-way merge of sorted fibers that accumulates colliding
//! coordinates. These helpers implement that semantics in software; the
//! `flexagon-noc` crate layers cycle accounting on top.
//!
//! The k-way path is a loser tree (tournament tree) over composite
//! `(coordinate, source)` keys packed into one `u64`: selecting the next
//! element costs `log2(k)` branch-free `u64` comparisons against the
//! allocator-churned tuple pops of a binary heap, and ties on a coordinate
//! resolve in source order automatically — which fixes the floating-point
//! accumulation order and keeps results bit-identical to the sequential
//! reference. Dedicated 2-way and 4-way fast paths serve the radix pattern
//! of the engine's `merge_row_fibers` loop.

use crate::{Fiber, FiberView, Value};

/// Outcome of a merge: the merged fiber plus operation counts.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MergeStats {
    /// Number of coordinate comparisons performed.
    pub comparisons: u64,
    /// Number of value additions (coordinate collisions).
    pub additions: u64,
}

/// Merges two sorted fibers, accumulating values on coordinate collisions.
///
/// Dispatches between a run-advance SIMD loop (`merge_two_simd`) and the
/// classic element-at-a-time loop ([`merge_two_scalar`]); both produce
/// bit-identical fibers and identical [`MergeStats`]. The SIMD loop is also
/// the fix for the rebuild-to-rebuild bimodality PR 5 documented (22–53 µs
/// across identical rebuilds, pinned-but-mode-flipping under
/// `#[inline(never)]`): its cost is spread across run discovery and block
/// copies instead of concentrating in one branch-per-element chain whose
/// alignment the linker controls — the bench sweeps in `BENCH_spgemm.json`
/// record it stable within ±7% across rebuild sweeps, with no modes.
pub fn merge_two(a: FiberView<'_>, b: FiberView<'_>) -> (Fiber, MergeStats) {
    if simd::level() == simd::Level::Scalar {
        merge_two_scalar(a, b)
    } else {
        merge_two_simd(a, b)
    }
}

/// SIMD 2-way merge: advances through *runs* of elements drawn from one
/// side instead of comparing one coordinate pair per iteration.
///
/// At each step the head coordinates decide: on a collision the values are
/// added exactly like the scalar loop (same operand order, so the float
/// result is bit-identical); otherwise [`simd::run_lt_u32`] measures how
/// far the losing side runs strictly below the other side's head — an
/// inline scalar head followed by 8-lane compares — and the whole run is
/// block-copied. Interleaved inputs degrade to run length 1 and stay inside
/// the scalar head (no vector-call overhead where it cannot pay), while
/// skewed inputs (the common case after radix dispatch) become
/// memcpy-bound.
///
/// The scalar loop charges one comparison per iteration and each iteration
/// pushes exactly one output element, so its counters follow from the
/// cursor positions at main-loop exit: `comparisons = i + j - additions`
/// (a collision advances both cursors but was a single comparison). This
/// reconstruction keeps [`MergeStats`] identical to [`merge_two_scalar`].
fn merge_two_simd(a: FiberView<'_>, b: FiberView<'_>) -> (Fiber, MergeStats) {
    let mut coords: Vec<u32> = Vec::with_capacity(a.len() + b.len());
    let mut values: Vec<Value> = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    let (ac, bc) = (a.coords(), b.coords());
    let (av, bv) = (a.values(), b.values());
    let mut additions = 0u64;
    while i < ac.len() && j < bc.len() {
        let (ca, cb) = (ac[i], bc[j]);
        if ca == cb {
            additions += 1;
            coords.push(ca);
            values.push(av[i] + bv[j]);
            i += 1;
            j += 1;
        } else if ca < cb {
            // First element through `push` — only when the same side wins
            // twice in a row (the run signal) is the rest of the run
            // measured and block-copied, so interleaved inputs pay scalar
            // cost plus one extra compare.
            coords.push(ca);
            values.push(av[i]);
            i += 1;
            if i < ac.len() && ac[i] < cb {
                let run = 1 + simd::run_lt_u32(&ac[i + 1..], cb);
                copy_run(&ac[i..i + run], &av[i..i + run], &mut coords, &mut values);
                i += run;
            }
        } else {
            coords.push(cb);
            values.push(bv[j]);
            j += 1;
            if j < bc.len() && bc[j] < ca {
                let run = 1 + simd::run_lt_u32(&bc[j + 1..], ca);
                copy_run(&bc[j..j + run], &bv[j..j + run], &mut coords, &mut values);
                j += run;
            }
        }
    }
    let stats = MergeStats {
        comparisons: (i + j) as u64 - additions,
        additions,
    };
    coords.extend_from_slice(&ac[i..]);
    values.extend_from_slice(&av[i..]);
    coords.extend_from_slice(&bc[j..]);
    values.extend_from_slice(&bv[j..]);
    (Fiber::from_parts(coords, values), stats)
}

/// Appends a discovered run to the output, elementwise below 16 elements:
/// `extend_from_slice` lowers to a length-generic `memcpy` call, which
/// costs more than it copies on the 2–8 element runs interleaved merges
/// produce.
#[inline(always)]
fn copy_run(c: &[u32], v: &[Value], coords: &mut Vec<u32>, values: &mut Vec<Value>) {
    if c.len() < 16 {
        for k in 0..c.len() {
            coords.push(c[k]);
            values.push(v[k]);
        }
    } else {
        coords.extend_from_slice(c);
        values.extend_from_slice(v);
    }
}

/// Scalar 2-way merge — the `FLEXAGON_SIMD=off` fallback and the semantic
/// reference the differential tests compare `merge_two_simd` against.
///
/// `#[inline(never)]` pins this body to one code address instead of
/// re-laying it out per inline site; PR 5 measured that this makes
/// *same-source* rebuilds stable (two three-rebuild sweeps each within
/// ±7% of their mode) but cannot stop the mode itself flipping when
/// unrelated code moves the link layout, since function alignment is not
/// controllable on stable Rust. That residual instability is why the
/// benched default path is now the SIMD loop above; the recorded scalar
/// history (21.0/24.1/22.6 µs in one tree state, 47.3/53.8/52.2 µs in
/// another) lives on in the BENCH notes. A branchless rewrite
/// (flag-advanced cursors + conditional-move value select) was also tried
/// and measured worse than either mode (~60 µs): the merge's branches are
/// well-predicted on real fiber data, so trading them for a serialized
/// cmov dependency chain is a loss.
#[inline(never)]
pub fn merge_two_scalar(a: FiberView<'_>, b: FiberView<'_>) -> (Fiber, MergeStats) {
    let mut coords: Vec<u32> = Vec::with_capacity(a.len() + b.len());
    let mut values: Vec<Value> = Vec::with_capacity(a.len() + b.len());
    let mut stats = MergeStats::default();
    let (mut i, mut j) = (0, 0);
    let (ac, bc) = (a.coords(), b.coords());
    let (av, bv) = (a.values(), b.values());
    while i < ac.len() && j < bc.len() {
        stats.comparisons += 1;
        let (ca, cb) = (ac[i], bc[j]);
        match ca.cmp(&cb) {
            std::cmp::Ordering::Less => {
                coords.push(ca);
                values.push(av[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                coords.push(cb);
                values.push(bv[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                stats.additions += 1;
                coords.push(ca);
                values.push(av[i] + bv[j]);
                i += 1;
                j += 1;
            }
        }
    }
    coords.extend_from_slice(&ac[i..]);
    values.extend_from_slice(&av[i..]);
    coords.extend_from_slice(&bc[j..]);
    values.extend_from_slice(&bv[j..]);
    (Fiber::from_parts(coords, values), stats)
}

/// Merges any number of sorted fibers with accumulation.
///
/// Merging `F` fibers of `E` total elements costs `O(E log F)`; specialized
/// 2-way and 4-way paths handle the small radixes the engine's merge loop
/// produces, and a loser tree covers the general case.
///
/// The counter semantics match the MRN's pop-per-element model: one
/// comparison is charged per element entering the merge, one addition per
/// coordinate collision.
///
/// ```
/// use flexagon_sparse::{Element, Fiber, merge};
/// let a = Fiber::from_sorted(vec![Element::new(0, 1.0), Element::new(2, 1.0)]);
/// let b = Fiber::from_sorted(vec![Element::new(2, 2.0), Element::new(3, 1.0)]);
/// let (m, _) = merge::merge_accumulate(&[a.as_view(), b.as_view()]);
/// assert_eq!(m.get(2), Some(3.0));
/// assert_eq!(m.len(), 3);
/// ```
pub fn merge_accumulate(fibers: &[FiberView<'_>]) -> (Fiber, MergeStats) {
    match fibers.len() {
        0 => (Fiber::new(), MergeStats::default()),
        1 => (
            fibers[0].to_fiber(),
            MergeStats {
                comparisons: fibers[0].len() as u64,
                additions: 0,
            },
        ),
        2 => merge2_accumulate(fibers[0], fibers[1]),
        3 | 4 => merge4_accumulate(fibers),
        5..=8 => merge_loser_tree(fibers),
        _ => merge_sort_based(fibers),
    }
}

/// Wide-radix path: concatenate composite keys, sort, scan-accumulate.
///
/// For many-way merges the branchy tree replay loses to one pdqsort pass
/// over packed `u64` keys followed by a linear accumulation scan — the sort
/// is cache-streaming and branch-light, and the `(coordinate, source)` key
/// packing preserves the source-order float accumulation exactly like the
/// tree does.
fn merge_sort_based(fibers: &[FiberView<'_>]) -> (Fiber, MergeStats) {
    let total: usize = fibers.iter().map(|f| f.len()).sum();
    let mut keyed: Vec<(u64, Value)> = Vec::with_capacity(total);
    for (src, f) in fibers.iter().enumerate() {
        keyed.extend(
            f.coords()
                .iter()
                .zip(f.values())
                .map(|(&c, &v)| (key(c, src), v)),
        );
    }
    keyed.sort_unstable_by_key(|&(k, _)| k);
    let mut coords: Vec<u32> = Vec::with_capacity(total);
    let mut values: Vec<Value> = Vec::with_capacity(total);
    let mut last: u64 = u64::MAX;
    for &(k, v) in &keyed {
        let coord = (k >> 32) as u32;
        if coord as u64 == last {
            *values.last_mut().expect("parallel arrays") += v;
        } else {
            coords.push(coord);
            values.push(v);
            last = coord as u64;
        }
    }
    let stats = MergeStats {
        comparisons: total as u64,
        additions: (total - coords.len()) as u64,
    };
    (Fiber::from_parts(coords, values), stats)
}

/// 2-way fast path: the `merge_two` loop with pop-per-element counter
/// semantics (both colliding elements are charged a comparison, matching
/// the k-way model; the counts fall out of the lengths, since every
/// collision shrinks the output by one).
#[inline(never)]
fn merge2_accumulate(a: FiberView<'_>, b: FiberView<'_>) -> (Fiber, MergeStats) {
    let total = (a.len() + b.len()) as u64;
    let (out, _) = merge_two(a, b);
    let stats = MergeStats {
        comparisons: total,
        additions: total - out.len() as u64,
    };
    (out, stats)
}

/// Composite sort key: coordinate in the high half, source index in the low
/// half, so one `u64` comparison orders by coordinate with ties broken in
/// source order (the float-accumulation order of the sequential reference).
#[inline(always)]
fn key(coord: u32, src: usize) -> u64 {
    ((coord as u64) << 32) | src as u64
}

/// Key for an exhausted source: larger than any real key (a real key's low
/// half is a source index, always smaller than `u32::MAX`).
const EXHAUSTED: u64 = u64::MAX;

/// 3/4-way fast path: repeated minimum over at most four head keys. With so
/// few sources a branchless min-scan beats tree bookkeeping.
fn merge4_accumulate(fibers: &[FiberView<'_>]) -> (Fiber, MergeStats) {
    debug_assert!((3..=4).contains(&fibers.len()));
    let total: usize = fibers.iter().map(|f| f.len()).sum();
    let mut coords: Vec<u32> = Vec::with_capacity(total);
    let mut values: Vec<Value> = Vec::with_capacity(total);
    let mut pos = [0usize; 4];
    let mut heads = [EXHAUSTED; 4];
    for (src, f) in fibers.iter().enumerate() {
        if !f.is_empty() {
            heads[src] = key(f.coords()[0], src);
        }
    }
    // Sentinel larger than any u32 coordinate, so the first element never
    // matches it.
    let mut last: u64 = u64::MAX;
    loop {
        let mut best = heads[0];
        for &h in &heads[1..fibers.len()] {
            best = best.min(h);
        }
        if best == EXHAUSTED {
            break;
        }
        let coord = (best >> 32) as u32;
        let src = (best & 0xFFFF_FFFF) as usize;
        let value = fibers[src].values()[pos[src]];
        if coord as u64 == last {
            *values.last_mut().expect("parallel arrays") += value;
        } else {
            coords.push(coord);
            values.push(value);
            last = coord as u64;
        }
        pos[src] += 1;
        heads[src] = if pos[src] < fibers[src].len() {
            key(fibers[src].coords()[pos[src]], src)
        } else {
            EXHAUSTED
        };
    }
    let stats = MergeStats {
        comparisons: total as u64,
        additions: (total - coords.len()) as u64,
    };
    (Fiber::from_parts(coords, values), stats)
}

/// General k-way loser tree.
fn merge_loser_tree(fibers: &[FiberView<'_>]) -> (Fiber, MergeStats) {
    let k = fibers.len().next_power_of_two();
    let total: usize = fibers.iter().map(|f| f.len()).sum();
    let mut coords: Vec<u32> = Vec::with_capacity(total);
    let mut values: Vec<Value> = Vec::with_capacity(total);
    let mut pos = vec![0usize; fibers.len()];
    let mut heads = vec![EXHAUSTED; k];
    for (src, f) in fibers.iter().enumerate() {
        if !f.is_empty() {
            heads[src] = key(f.coords()[0], src);
        }
    }
    // `tree[1..k]` holds the loser source index of each internal node;
    // leaf `src` sits at implicit position `k + src`.
    let mut tree = vec![usize::MAX; k];
    // Seed losers and the first winner with one full tournament, level by
    // level from the leaves up.
    let mut winner = 0usize;
    {
        let mut round: Vec<usize> = (0..k).collect();
        let mut node_base = k / 2;
        while round.len() > 1 {
            let mut next = Vec::with_capacity(round.len() / 2);
            for (i, pair) in round.chunks(2).enumerate() {
                let (a, b) = (pair[0], pair[1]);
                let (win, lose) = if heads[a] <= heads[b] { (a, b) } else { (b, a) };
                tree[node_base + i] = lose;
                next.push(win);
            }
            round = next;
            node_base /= 2;
        }
        if let Some(&w) = round.first() {
            winner = w;
        }
    }
    // Sentinel larger than any u32 coordinate, so the first element never
    // matches it.
    let mut last: u64 = u64::MAX;
    while heads[winner] != EXHAUSTED {
        let best = heads[winner];
        let coord = (best >> 32) as u32;
        let src = winner;
        let value = fibers[src].values()[pos[src]];
        if coord as u64 == last {
            *values.last_mut().expect("parallel arrays") += value;
        } else {
            coords.push(coord);
            values.push(value);
            last = coord as u64;
        }
        pos[src] += 1;
        heads[src] = if pos[src] < fibers[src].len() {
            key(fibers[src].coords()[pos[src]], src)
        } else {
            EXHAUSTED
        };
        // Replay the path from the leaf to the root: at each node the new
        // candidate swaps with the stored loser whenever the loser is
        // smaller; whatever survives at the top is the next winner.
        let mut candidate = src;
        let mut node = (k + src) / 2;
        while node >= 1 {
            if heads[tree[node]] < heads[candidate] {
                std::mem::swap(&mut tree[node], &mut candidate);
            }
            node /= 2;
        }
        winner = candidate;
    }
    let stats = MergeStats {
        comparisons: total as u64,
        additions: (total - coords.len()) as u64,
    };
    (Fiber::from_parts(coords, values), stats)
}

/// Total elements across a set of fibers (the merge's input volume).
pub fn input_volume(fibers: &[FiberView<'_>]) -> usize {
    fibers.iter().map(|f| f.len()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Element;

    fn f(pairs: &[(u32, Value)]) -> Fiber {
        Fiber::from_sorted(pairs.iter().map(|&(c, v)| Element::new(c, v)).collect())
    }

    #[test]
    fn merge_two_disjoint() {
        let a = f(&[(0, 1.0), (2, 2.0)]);
        let b = f(&[(1, 3.0), (5, 4.0)]);
        let (m, stats) = merge_two(a.as_view(), b.as_view());
        assert_eq!(m.len(), 4);
        assert_eq!(stats.additions, 0);
        assert_eq!(m.get(5), Some(4.0));
    }

    #[test]
    fn merge_two_accumulates_collisions() {
        let a = f(&[(1, 1.0), (2, 2.0)]);
        let b = f(&[(1, 10.0), (3, 3.0)]);
        let (m, stats) = merge_two(a.as_view(), b.as_view());
        assert_eq!(m.get(1), Some(11.0));
        assert_eq!(stats.additions, 1);
    }

    #[test]
    fn merge_two_with_empty_is_identity() {
        let a = f(&[(1, 1.0)]);
        let (m, _) = merge_two(a.as_view(), Fiber::new().as_view());
        assert_eq!(m, a);
    }

    #[test]
    fn merge_accumulate_empty_input() {
        let (m, stats) = merge_accumulate(&[]);
        assert!(m.is_empty());
        assert_eq!(stats, MergeStats::default());
    }

    #[test]
    fn merge_accumulate_matches_pairwise() {
        let a = f(&[(0, 1.0), (4, 1.0)]);
        let b = f(&[(0, 2.0), (3, 1.0)]);
        let c = f(&[(3, 5.0), (4, 5.0)]);
        let (kway, _) = merge_accumulate(&[a.as_view(), b.as_view(), c.as_view()]);
        let (ab, _) = merge_two(a.as_view(), b.as_view());
        let (abc, _) = merge_two(ab.as_view(), c.as_view());
        assert_eq!(kway, abc);
    }

    #[test]
    fn merge_accumulate_many_copies_of_same_fiber() {
        let a = f(&[(0, 1.0), (1, 1.0)]);
        let views: Vec<_> = std::iter::repeat_n(a.as_view(), 8).collect();
        let (m, stats) = merge_accumulate(&views);
        assert_eq!(m.get(0), Some(8.0));
        assert_eq!(m.get(1), Some(8.0));
        assert_eq!(stats.additions, 14); // 7 per coordinate
    }

    #[test]
    fn merge_preserves_sortedness() {
        let a = f(&[(5, 1.0), (9, 1.0)]);
        let b = f(&[(0, 1.0), (7, 1.0)]);
        let (m, _) = merge_accumulate(&[a.as_view(), b.as_view()]);
        let coords: Vec<u32> = m.iter().map(|e| e.coord).collect();
        let mut sorted = coords.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(coords, sorted);
    }

    #[test]
    fn all_radixes_agree_with_two_way_composition() {
        // Build deterministic pseudo-random fibers and check every dispatch
        // path (1, 2, 3, 4, 5, 8, 17, 64 ways) against pairwise merge_two.
        for ways in [1usize, 2, 3, 4, 5, 8, 17, 64] {
            let fibers: Vec<Fiber> = (0..ways)
                .map(|s| {
                    let pairs: Vec<(u32, Value)> = (0..40u32)
                        .filter(|c| {
                            (c.wrapping_mul(2654435761).wrapping_add(s as u32 * 97)) % 3 == 0
                        })
                        .map(|c| (c, (s + 1) as Value))
                        .collect();
                    f(&pairs)
                })
                .collect();
            let views: Vec<_> = fibers.iter().map(Fiber::as_view).collect();
            let (kway, stats) = merge_accumulate(&views);
            let mut pairwise = Fiber::new();
            for fiber in &fibers {
                let (m, _) = merge_two(pairwise.as_view(), fiber.as_view());
                pairwise = m;
            }
            assert_eq!(kway, pairwise, "radix {ways} mismatch");
            assert_eq!(
                stats.comparisons,
                views.iter().map(|v| v.len() as u64).sum::<u64>(),
                "pop-per-element comparison count at radix {ways}"
            );
        }
    }

    #[test]
    fn simd_merge_matches_scalar_including_stats() {
        // Interleaved, skewed, colliding, and empty shapes all have to agree
        // with the scalar twin on both the fiber and the counters.
        let shapes: Vec<(Fiber, Fiber)> = vec![
            (
                f(&[(0, 1.0), (2, 2.0), (4, 3.0)]),
                f(&[(1, 4.0), (3, 5.0), (5, 6.0)]),
            ),
            (
                f(&[(0, 1.0), (1, 2.0), (2, 3.0)]),
                f(&[(0, 4.0), (1, 5.0), (2, 6.0)]),
            ),
            (
                f(&(0..40).map(|c| (c, c as Value)).collect::<Vec<_>>()),
                f(&[(17, 9.0)]),
            ),
            (Fiber::new(), f(&[(3, 1.0)])),
            (Fiber::new(), Fiber::new()),
        ];
        for (a, b) in &shapes {
            let (ms, ss) = merge_two_scalar(a.as_view(), b.as_view());
            let (mv, sv) = merge_two_simd(a.as_view(), b.as_view());
            assert_eq!(ms, mv);
            assert_eq!(ss, sv);
        }
    }

    #[test]
    fn counter_semantics_are_pop_per_element() {
        let a = f(&[(0, 1.0), (1, 1.0)]);
        let b = f(&[(1, 2.0), (2, 2.0)]);
        let (_, stats) = merge_accumulate(&[a.as_view(), b.as_view()]);
        assert_eq!(stats.comparisons, 4);
        assert_eq!(stats.additions, 1);
    }

    #[test]
    fn input_volume_sums_lengths() {
        let a = f(&[(0, 1.0)]);
        let b = f(&[(0, 1.0), (1, 1.0)]);
        assert_eq!(input_volume(&[a.as_view(), b.as_view()]), 3);
    }
}
