//! Matrix Market (`.mtx`) import/export.
//!
//! SpGEMM accelerator papers (SpArch, GAMMA, OuterSPACE) evaluate on
//! SuiteSparse matrices distributed in the Matrix Market exchange format;
//! this module lets the simulator consume those files directly. The
//! coordinate format with `real`, `integer` or `pattern` values and
//! `general` or `symmetric` symmetry is supported — the subset covering
//! the SuiteSparse collection.

use crate::validate::ValidationError;
use crate::{CompressedMatrix, MajorOrder, Value};
use std::io::{BufRead, Write};

/// Triplet capacity pre-allocated from the header's *declared* nnz. The
/// declared count is untrusted input: a one-line file claiming 10^18
/// entries must not turn `Vec::with_capacity` into an allocation bomb
/// (which aborts the process rather than unwinding). Growth beyond the
/// clamp falls back to ordinary doubling, paid for by actual data lines.
const MAX_PREALLOC_ENTRIES: usize = 1 << 20;

/// Errors produced while parsing a Matrix Market stream.
#[derive(Debug)]
#[non_exhaustive]
pub enum MtxError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The header line is missing or malformed.
    BadHeader(String),
    /// The file declares a feature outside the supported subset.
    Unsupported(String),
    /// A data line could not be parsed.
    BadEntry {
        /// 1-based line number.
        line: usize,
        /// Description of the defect.
        detail: String,
    },
    /// The parsed entries violate the declared dimensions.
    Format(crate::FormatError),
    /// The stream fails untrusted-input validation: dimensions beyond the
    /// representable range, or a declared element count that disagrees
    /// with the entries present (truncated or padded file).
    Invalid(ValidationError),
}

impl std::fmt::Display for MtxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "i/o error: {e}"),
            Self::BadHeader(h) => write!(f, "malformed matrix market header: {h}"),
            Self::Unsupported(what) => write!(f, "unsupported matrix market feature: {what}"),
            Self::BadEntry { line, detail } => {
                write!(f, "bad entry at line {line}: {detail}")
            }
            Self::Format(e) => write!(f, "{e}"),
            Self::Invalid(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for MtxError {}

impl From<std::io::Error> for MtxError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<crate::FormatError> for MtxError {
    fn from(e: crate::FormatError) -> Self {
        Self::Format(e)
    }
}

impl From<ValidationError> for MtxError {
    fn from(e: ValidationError) -> Self {
        Self::Invalid(e)
    }
}

/// Reads a Matrix Market coordinate stream into a compressed matrix.
///
/// # Errors
///
/// Returns [`MtxError`] on malformed input or unsupported variants (array
/// format, complex values).
pub fn read_matrix_market<R: BufRead>(
    reader: R,
    order: MajorOrder,
) -> Result<CompressedMatrix, MtxError> {
    let mut lines = reader.lines().enumerate();
    let (_, header) = lines
        .next()
        .ok_or_else(|| MtxError::BadHeader("empty input".into()))?;
    let header = header?;
    let fields: Vec<String> = header.split_whitespace().map(str::to_lowercase).collect();
    if fields.len() < 4 || fields[0] != "%%matrixmarket" || fields[1] != "matrix" {
        return Err(MtxError::BadHeader(header));
    }
    if fields[2] != "coordinate" {
        return Err(MtxError::Unsupported(format!("format '{}'", fields[2])));
    }
    let pattern = match fields[3].as_str() {
        "real" | "integer" => false,
        "pattern" => true,
        other => return Err(MtxError::Unsupported(format!("field '{other}'"))),
    };
    let symmetric = match fields.get(4).map(String::as_str) {
        None | Some("general") => false,
        Some("symmetric") => true,
        Some(other) => return Err(MtxError::Unsupported(format!("symmetry '{other}'"))),
    };

    // Skip comments; the first non-comment line is the size line.
    let mut size_line = None;
    for (idx, line) in lines.by_ref() {
        let line = line?;
        if line.trim_start().starts_with('%') || line.trim().is_empty() {
            continue;
        }
        size_line = Some((idx + 1, line));
        break;
    }
    let (size_lineno, size_line) =
        size_line.ok_or_else(|| MtxError::BadHeader("missing size line".into()))?;
    let dims: Vec<u64> = size_line
        .split_whitespace()
        .map(|t| t.parse::<u64>())
        .collect::<Result<_, _>>()
        .map_err(|e| MtxError::BadEntry {
            line: size_lineno,
            detail: e.to_string(),
        })?;
    let [rows, cols, nnz] = dims[..] else {
        return Err(MtxError::BadEntry {
            line: size_lineno,
            detail: format!("expected 'rows cols nnz', got '{size_line}'"),
        });
    };
    // Coordinates are u32 internally; a declared dimension beyond that
    // would previously truncate silently (`rows as u32`) and misattribute
    // every entry. Reject it as what it is: an unrepresentable input.
    for (what, dim) in [("rows", rows), ("cols", cols)] {
        if dim > u64::from(u32::MAX) {
            return Err(ValidationError::DimTooLarge {
                what,
                value: dim,
                limit: u32::MAX,
            }
            .into());
        }
    }

    let mut parsed_entries = 0u64;
    let mut triplets: Vec<(u32, u32, Value)> =
        Vec::with_capacity((nnz as usize).min(MAX_PREALLOC_ENTRIES));
    for (idx, line) in lines {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        let mut tokens = trimmed.split_whitespace();
        let parse_coord = |t: Option<&str>, what: &str| -> Result<u32, MtxError> {
            t.ok_or_else(|| MtxError::BadEntry {
                line: idx + 1,
                detail: format!("missing {what}"),
            })?
            .parse::<u32>()
            .map_err(|e| MtxError::BadEntry {
                line: idx + 1,
                detail: e.to_string(),
            })
        };
        let r = parse_coord(tokens.next(), "row")?;
        let c = parse_coord(tokens.next(), "column")?;
        if r == 0 || c == 0 {
            return Err(MtxError::BadEntry {
                line: idx + 1,
                detail: "matrix market coordinates are 1-based".into(),
            });
        }
        let v: Value = if pattern {
            1.0
        } else {
            tokens
                .next()
                .ok_or_else(|| MtxError::BadEntry {
                    line: idx + 1,
                    detail: "missing value".into(),
                })?
                .parse::<f64>()
                .map_err(|e| MtxError::BadEntry {
                    line: idx + 1,
                    detail: e.to_string(),
                })? as Value
        };
        parsed_entries += 1;
        triplets.push((r - 1, c - 1, v));
        if symmetric && r != c {
            triplets.push((c - 1, r - 1, v));
        }
    }
    // The size line's nnz counts stored entries (data lines, before any
    // symmetric expansion). A disagreement means the file was truncated or
    // padded — previously accepted silently.
    if parsed_entries != nnz {
        return Err(ValidationError::NnzMismatch {
            declared: nnz,
            actual: parsed_entries,
        }
        .into());
    }
    Ok(CompressedMatrix::from_triplets(
        rows as u32,
        cols as u32,
        &triplets,
        order,
    )?)
}

/// Writes a matrix as a `general real coordinate` Matrix Market stream.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_matrix_market<W: Write>(
    matrix: &CompressedMatrix,
    mut writer: W,
) -> std::io::Result<()> {
    writeln!(writer, "%%MatrixMarket matrix coordinate real general")?;
    writeln!(writer, "% produced by the flexagon simulator")?;
    writeln!(
        writer,
        "{} {} {}",
        matrix.rows(),
        matrix.cols(),
        matrix.nnz()
    )?;
    for (major, fiber) in matrix.fibers() {
        for e in fiber.iter() {
            let (r, c) = match matrix.order() {
                MajorOrder::Row => (major, e.coord),
                MajorOrder::Col => (e.coord, major),
            };
            writeln!(writer, "{} {} {}", r + 1, c + 1, e.value)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    const SAMPLE: &str = "%%MatrixMarket matrix coordinate real general\n\
                          % a comment\n\
                          3 4 3\n\
                          1 1 2.5\n\
                          2 4 -1.0\n\
                          3 2 7\n";

    #[test]
    fn reads_general_real() {
        let m = read_matrix_market(Cursor::new(SAMPLE), MajorOrder::Row).unwrap();
        assert_eq!((m.rows(), m.cols(), m.nnz()), (3, 4, 3));
        assert_eq!(m.get(0, 0), 2.5);
        assert_eq!(m.get(1, 3), -1.0);
        assert_eq!(m.get(2, 1), 7.0);
    }

    #[test]
    fn reads_pattern_as_ones() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n2 2 2\n1 2\n2 1\n";
        let m = read_matrix_market(Cursor::new(text), MajorOrder::Row).unwrap();
        assert_eq!(m.get(0, 1), 1.0);
        assert_eq!(m.get(1, 0), 1.0);
    }

    #[test]
    fn expands_symmetric() {
        let text = "%%MatrixMarket matrix coordinate real symmetric\n3 3 2\n2 1 5.0\n3 3 1.0\n";
        let m = read_matrix_market(Cursor::new(text), MajorOrder::Row).unwrap();
        assert_eq!(m.nnz(), 3, "off-diagonal mirrored, diagonal not");
        assert_eq!(m.get(0, 1), 5.0);
        assert_eq!(m.get(1, 0), 5.0);
    }

    #[test]
    fn roundtrip_write_read() {
        let m = read_matrix_market(Cursor::new(SAMPLE), MajorOrder::Row).unwrap();
        let mut buf = Vec::new();
        write_matrix_market(&m, &mut buf).unwrap();
        let back = read_matrix_market(Cursor::new(buf), MajorOrder::Row).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn rejects_array_format() {
        let text = "%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n";
        assert!(matches!(
            read_matrix_market(Cursor::new(text), MajorOrder::Row),
            Err(MtxError::Unsupported(_))
        ));
    }

    #[test]
    fn rejects_zero_based_coords() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 3.0\n";
        assert!(matches!(
            read_matrix_market(Cursor::new(text), MajorOrder::Row),
            Err(MtxError::BadEntry { .. })
        ));
    }

    #[test]
    fn rejects_bad_header() {
        assert!(matches!(
            read_matrix_market(Cursor::new("hello\n"), MajorOrder::Row),
            Err(MtxError::BadHeader(_))
        ));
    }

    #[test]
    fn rejects_truncated_file() {
        // Declares 3 entries, provides 2 — previously accepted silently.
        let text = "%%MatrixMarket matrix coordinate real general\n3 3 3\n1 1 1.0\n2 2 2.0\n";
        assert!(matches!(
            read_matrix_market(Cursor::new(text), MajorOrder::Row),
            Err(MtxError::Invalid(ValidationError::NnzMismatch {
                declared: 3,
                actual: 2
            }))
        ));
    }

    #[test]
    fn rejects_padded_file() {
        let text = "%%MatrixMarket matrix coordinate real general\n3 3 1\n1 1 1.0\n2 2 2.0\n";
        assert!(matches!(
            read_matrix_market(Cursor::new(text), MajorOrder::Row),
            Err(MtxError::Invalid(ValidationError::NnzMismatch { .. }))
        ));
    }

    #[test]
    fn rejects_dims_beyond_u32() {
        // 2^33 rows would previously truncate to 0 via `as u32`.
        let text = "%%MatrixMarket matrix coordinate real general\n8589934592 2 1\n1 1 1.0\n";
        assert!(matches!(
            read_matrix_market(Cursor::new(text), MajorOrder::Row),
            Err(MtxError::Invalid(ValidationError::DimTooLarge {
                what: "rows",
                value: 8589934592,
                ..
            }))
        ));
    }

    #[test]
    fn huge_declared_nnz_does_not_preallocate() {
        // A tiny stream claiming 10^18 entries must fail with a typed
        // error, not abort the process in `Vec::with_capacity`.
        let text =
            "%%MatrixMarket matrix coordinate real general\n2 2 1000000000000000000\n1 1 1.0\n";
        assert!(matches!(
            read_matrix_market(Cursor::new(text), MajorOrder::Row),
            Err(MtxError::Invalid(ValidationError::NnzMismatch { .. }))
        ));
    }

    #[test]
    fn rejects_non_numeric_value_token() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 banana\n";
        assert!(matches!(
            read_matrix_market(Cursor::new(text), MajorOrder::Row),
            Err(MtxError::BadEntry { line: 3, .. })
        ));
    }

    #[test]
    fn rejects_out_of_bounds_entry() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n";
        assert!(matches!(
            read_matrix_market(Cursor::new(text), MajorOrder::Row),
            Err(MtxError::Format(_))
        ));
    }
}
