//! Dense matrix used as the golden reference in tests and examples.

use crate::{CompressedMatrix, FormatError, MajorOrder, Result, Value};

/// A row-major dense matrix of [`Value`]s.
///
/// Used to cross-check every accelerator and reference kernel: any SpMSpM
/// result must equal `DenseMatrix::matmul` of the densified operands.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    rows: u32,
    cols: u32,
    data: Vec<Value>,
}

impl DenseMatrix {
    /// Creates an all-zero `rows x cols` matrix.
    pub fn zeros(rows: u32, cols: u32) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows as usize * cols as usize],
        }
    }

    /// Builds from a row-major data vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: u32, cols: u32, data: Vec<Value>) -> Self {
        assert_eq!(
            data.len(),
            rows as usize * cols as usize,
            "data length must equal rows * cols"
        );
        Self { rows, cols, data }
    }

    /// Densifies a compressed matrix.
    pub fn from_compressed(m: &CompressedMatrix) -> Self {
        let mut d = Self::zeros(m.rows(), m.cols());
        for (major, fiber) in m.fibers() {
            for e in fiber.iter() {
                let (r, c) = match m.order() {
                    MajorOrder::Row => (major, e.coord),
                    MajorOrder::Col => (e.coord, major),
                };
                d.set(r, c, e.value);
            }
        }
        d
    }

    /// Number of rows.
    pub fn rows(&self) -> u32 {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> u32 {
        self.cols
    }

    /// Value at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn get(&self, row: u32, col: u32) -> Value {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        self.data[row as usize * self.cols as usize + col as usize]
    }

    /// Sets the value at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn set(&mut self, row: u32, col: u32, v: Value) {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        self.data[row as usize * self.cols as usize + col as usize] = v;
    }

    /// Row-major data slice.
    pub fn data(&self) -> &[Value] {
        &self.data
    }

    /// Number of non-zero entries.
    pub fn nnz(&self) -> usize {
        self.data.iter().filter(|&&v| v != 0.0).count()
    }

    /// Dense matrix multiplication `self * rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`FormatError::DimensionMismatch`] when the inner dimensions
    /// disagree.
    pub fn matmul(&self, rhs: &DenseMatrix) -> Result<DenseMatrix> {
        if self.cols != rhs.rows {
            return Err(FormatError::DimensionMismatch {
                left_cols: self.cols,
                right_rows: rhs.rows,
            });
        }
        let mut out = DenseMatrix::zeros(self.rows, rhs.cols);
        for m in 0..self.rows as usize {
            for k in 0..self.cols as usize {
                let a = self.data[m * self.cols as usize + k];
                if a == 0.0 {
                    continue;
                }
                for n in 0..rhs.cols as usize {
                    out.data[m * rhs.cols as usize + n] += a * rhs.data[k * rhs.cols as usize + n];
                }
            }
        }
        Ok(out)
    }

    /// Compresses into the given major order, dropping exact zeros.
    pub fn to_compressed(&self, order: MajorOrder) -> CompressedMatrix {
        let triplets: Vec<(u32, u32, Value)> = (0..self.rows)
            .flat_map(|r| {
                (0..self.cols).filter_map(move |c| {
                    let v = self.get(r, c);
                    (v != 0.0).then_some((r, c, v))
                })
            })
            .collect();
        CompressedMatrix::from_triplets(self.rows, self.cols, &triplets, order)
            .expect("triplets from a dense matrix are always well-formed")
    }

    /// Largest absolute element-wise difference against `other`.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn max_abs_diff(&self, other: &DenseMatrix) -> Value {
        assert_eq!(self.rows, other.rows, "row mismatch");
        assert_eq!(self.cols, other.cols, "col mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, Value::max)
    }

    /// Element-wise comparison within absolute tolerance `tol`.
    pub fn approx_eq(&self, other: &DenseMatrix, tol: Value) -> bool {
        self.rows == other.rows && self.cols == other.cols && self.max_abs_diff(other) <= tol
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_set_get() {
        let mut d = DenseMatrix::zeros(2, 3);
        assert_eq!(d.get(1, 2), 0.0);
        d.set(1, 2, 5.0);
        assert_eq!(d.get(1, 2), 5.0);
        assert_eq!(d.nnz(), 1);
    }

    #[test]
    fn matmul_small() {
        let a = DenseMatrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = DenseMatrix::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_dimension_mismatch() {
        let a = DenseMatrix::zeros(2, 3);
        let b = DenseMatrix::zeros(2, 2);
        assert!(matches!(
            a.matmul(&b),
            Err(FormatError::DimensionMismatch {
                left_cols: 3,
                right_rows: 2
            })
        ));
    }

    #[test]
    fn compress_roundtrip_row_and_col() {
        let d = DenseMatrix::from_vec(2, 3, vec![0.0, 2.0, 0.0, 1.0, 0.0, 3.0]);
        for order in [MajorOrder::Row, MajorOrder::Col] {
            let c = d.to_compressed(order);
            assert_eq!(c.nnz(), 3);
            assert_eq!(DenseMatrix::from_compressed(&c), d);
        }
    }

    #[test]
    fn max_abs_diff_and_approx_eq() {
        let a = DenseMatrix::from_vec(1, 2, vec![1.0, 2.0]);
        let b = DenseMatrix::from_vec(1, 2, vec![1.5, 2.0]);
        assert_eq!(a.max_abs_diff(&b), 0.5);
        assert!(a.approx_eq(&b, 0.5));
        assert!(!a.approx_eq(&b, 0.4));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        DenseMatrix::zeros(1, 1).get(1, 0);
    }
}
