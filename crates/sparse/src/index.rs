//! Tiered per-fiber coordinate indexes for skip-ahead intersection.
//!
//! The Inner-Product dataflow is intersection-bound: every stationary tile
//! must discover which elements of each streaming fiber of B carry a
//! coordinate the tile holds stationary. Re-scanning the fiber per tile costs
//! `O(tiles x nnz(B))` probes; an index built once over B answers the same
//! membership queries in (amortized) constant time per probe.
//!
//! [`FiberIndex`] picks a tier per fiber from the shape of its coordinate
//! span (Gamma and SparseLNR-style schedulers make the same trade):
//!
//! * **Bitmap** — the span is dense enough (≤ [`BITS_PER_ELEMENT`] bits per
//!   stored element, which short fibers over small coordinate spaces almost
//!   always satisfy) that one bit per coordinate is affordable: membership is
//!   a word test and the element's position is recovered with a popcount over
//!   precomputed per-word ranks. `O(1)` probes, no comparisons at all.
//! * **Short** — at most one skip block of elements over a sparse span: a
//!   plain scan of the SoA coordinate slice beats any auxiliary structure.
//! * **Skip** — long fiber over a sparse span: a block-skip list storing
//!   every [`SKIP`]-th coordinate narrows a probe to one 16-element block of
//!   the SoA `coords` array, which is then scanned.
//!
//! [`Prober`] adds the skip-ahead cursor used by sorted query streams (the
//! tile loop probes its stationary coordinates in ascending order), and
//! [`MatrixIndex`] holds one `FiberIndex` per fiber of a matrix.

use crate::{FiberView, MatrixView, Value};

/// Elements per skip-list block; also the "short fiber" cutoff.
pub const SKIP: usize = 16;

/// Maximum bitmap bits per stored element before the bitmap tier is deemed
/// too sparse and the skip tier is used instead.
pub const BITS_PER_ELEMENT: u32 = 64;

/// The tier backing a [`FiberIndex`], exposed for tests and bench labels.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Tier {
    /// No elements; every probe misses.
    Empty,
    /// At most [`SKIP`] elements; probes scan the coordinate slice directly.
    Short,
    /// Dense bitmap over `[first, last]` with cumulative per-word ranks.
    Bitmap {
        /// Lowest coordinate in the fiber (bit 0 of word 0).
        first: u32,
        /// One bit per coordinate in the span.
        words: Vec<u64>,
        /// `ranks[w]` = number of set bits in `words[..w]`.
        ranks: Vec<u32>,
    },
    /// Block-skip list: `skips[j]` is the coordinate at position `j * SKIP`.
    Skip {
        /// Every `SKIP`-th coordinate, i.e. the minimum of each block.
        skips: Vec<u32>,
    },
}

/// Rank-based bitmap lookup shared by [`FiberIndex::position`] and
/// [`Prober::probe`].
///
/// Kept `#[inline(always)]`: the bitmap tier answers each probe with a word
/// test plus a popcount, and the callers' per-probe loops only stay at that
/// cost if this body is flattened into them (a function call plus re-loading
/// `first`/`words`/`ranks` per probe is ~3x the lookup itself).
#[inline(always)]
fn bitmap_position(first: u32, words: &[u64], ranks: &[u32], coord: u32) -> Option<usize> {
    if coord < first {
        return None;
    }
    let bit = (coord - first) as usize;
    let w = bit >> 6;
    let word = *words.get(w)?;
    let mask = 1u64 << (bit & 63);
    if word & mask == 0 {
        return None;
    }
    Some(ranks[w] as usize + (word & (mask - 1)).count_ones() as usize)
}

/// A per-fiber coordinate index answering "is `coord` present, and at which
/// position?" without streaming the fiber.
///
/// Built from a fiber's coordinate slice; probing needs the same slice again
/// (the index never copies element data, only derived structure).
///
/// ```
/// use flexagon_sparse::{Element, Fiber, FiberIndex};
/// let f = Fiber::from_sorted(vec![Element::new(2, 1.0), Element::new(9, 4.0)]);
/// let idx = FiberIndex::build(f.coords());
/// assert_eq!(idx.position(f.coords(), 9), Some(1));
/// assert_eq!(idx.position(f.coords(), 5), None);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FiberIndex {
    len: usize,
    tier: Tier,
}

impl FiberIndex {
    /// Builds the index for a strictly-increasing coordinate slice, choosing
    /// the cheapest tier for its shape.
    pub fn build(coords: &[u32]) -> Self {
        let len = coords.len();
        if len == 0 {
            return Self {
                len,
                tier: Tier::Empty,
            };
        }
        let (first, last) = (coords[0], coords[len - 1]);
        let span = (last - first) as u64 + 1;
        if span > len as u64 * BITS_PER_ELEMENT as u64 && len <= SKIP {
            return Self {
                len,
                tier: Tier::Short,
            };
        }
        if span <= len as u64 * BITS_PER_ELEMENT as u64 {
            let n_words = span.div_ceil(64) as usize;
            let mut words = vec![0u64; n_words];
            for &c in coords {
                let bit = c - first;
                words[(bit >> 6) as usize] |= 1u64 << (bit & 63);
            }
            let mut ranks = Vec::with_capacity(n_words);
            let mut running = 0u32;
            for &w in &words {
                ranks.push(running);
                running += w.count_ones();
            }
            Self {
                len,
                tier: Tier::Bitmap {
                    first,
                    words,
                    ranks,
                },
            }
        } else {
            let skips: Vec<u32> = coords.iter().step_by(SKIP).copied().collect();
            Self {
                len,
                tier: Tier::Skip { skips },
            }
        }
    }

    /// Number of elements in the indexed fiber.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when the indexed fiber has no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The tier [`build`](FiberIndex::build) would select for this
    /// coordinate slice, without materializing any index storage — the
    /// format-statistics path ([`FormatStats`]) reads the selection as a
    /// clustering signal over every fiber of a matrix, where building the
    /// bitmap words just to throw them away would dominate the pass.
    ///
    /// [`FormatStats`]: crate::FormatStats
    pub fn classify(coords: &[u32]) -> &'static str {
        let len = coords.len();
        if len == 0 {
            return "empty";
        }
        let span = (coords[len - 1] - coords[0]) as u64 + 1;
        if span > len as u64 * BITS_PER_ELEMENT as u64 {
            if len <= SKIP {
                "short"
            } else {
                "skip"
            }
        } else {
            "bitmap"
        }
    }

    /// Name of the selected tier (`"empty"`, `"short"`, `"bitmap"`,
    /// `"skip"`) — for diagnostics and bench labels.
    pub fn tier_name(&self) -> &'static str {
        match self.tier {
            Tier::Empty => "empty",
            Tier::Short => "short",
            Tier::Bitmap { .. } => "bitmap",
            Tier::Skip { .. } => "skip",
        }
    }

    /// Position of `coord` within the fiber, or `None` when absent.
    ///
    /// `coords` must be the same slice the index was built from.
    #[inline]
    pub fn position(&self, coords: &[u32], coord: u32) -> Option<usize> {
        debug_assert_eq!(coords.len(), self.len, "index/fiber mismatch");
        match &self.tier {
            Tier::Empty => None,
            Tier::Short => simd::find_eq_u32(coords, coord),
            Tier::Bitmap {
                first,
                words,
                ranks,
            } => bitmap_position(*first, words, ranks, coord),
            Tier::Skip { skips } => {
                // Find the block whose minimum does not exceed the query,
                // then scan inside it.
                let block = skips.partition_point(|&s| s <= coord).checked_sub(1)?;
                let start = block * SKIP;
                let end = (start + SKIP).min(self.len);
                simd::find_eq_u32(&coords[start..end], coord).map(|off| start + off)
            }
        }
    }

    /// Whether `coord` is present in the fiber.
    #[inline]
    pub fn contains(&self, coords: &[u32], coord: u32) -> bool {
        self.position(coords, coord).is_some()
    }

    /// A skip-ahead prober over `fiber` for ascending query streams.
    ///
    /// `fiber` must view the same elements the index was built from.
    pub fn prober<'a>(&'a self, fiber: FiberView<'a>) -> Prober<'a> {
        debug_assert_eq!(fiber.len(), self.len, "index/fiber mismatch");
        Prober {
            index: self,
            fiber,
            block: 0,
            pos: 0,
        }
    }
}

/// Stateful probe cursor for non-decreasing query sequences.
///
/// The scan tiers (short, skip) never move backwards: across a full ascending
/// query pass they touch each fiber element at most once, so `q` probes into
/// a fiber of `E` elements cost `O(q + E / SKIP)` instead of `O(q log E)`.
/// The bitmap tier answers each probe in `O(1)` regardless.
#[derive(Debug)]
pub struct Prober<'a> {
    index: &'a FiberIndex,
    fiber: FiberView<'a>,
    /// Current skip block (skip tier only).
    block: usize,
    /// Element cursor: probes resume scanning here.
    pos: usize,
}

impl Prober<'_> {
    /// Looks up `coord`, returning its position and value when present.
    ///
    /// Queries must be non-decreasing across calls on the same prober; a
    /// lower coordinate than a previous query may be reported absent.
    ///
    /// The bitmap arm stays in this `#[inline]` body and the scan tiers are
    /// outlined: the bitmap tier answers in `O(1)` per probe, so it must
    /// flatten into the caller's probe loop, and keeping the scan tiers'
    /// force-inlined SIMD prefix scans here bloats `probe` past the inline
    /// threshold (measured 3x on `threshold_probe/probe/r1` — every bitmap
    /// probe paid an outlined call plus a tier re-dispatch). The scan tiers
    /// do `O(run)` work per probe, which amortizes their one call.
    #[inline(always)]
    pub fn probe(&mut self, coord: u32) -> Option<(usize, Value)> {
        match &self.index.tier {
            Tier::Empty => None,
            Tier::Bitmap {
                first,
                words,
                ranks,
            } => {
                let i = bitmap_position(*first, words, ranks, coord)?;
                Some((i, self.fiber.values()[i]))
            }
            Tier::Short | Tier::Skip { .. } => self.probe_scan_tiers(coord),
        }
    }

    /// The short/skip arms of [`Self::probe`], outlined (see there).
    fn probe_scan_tiers(&mut self, coord: u32) -> Option<(usize, Value)> {
        let coords = self.fiber.coords();
        match &self.index.tier {
            Tier::Short => self.scan_from_cursor(coords, coord, coords.len()),
            Tier::Skip { skips } => {
                // Skip whole blocks whose successor minimum is still <= query.
                while self.block + 1 < skips.len() && skips[self.block + 1] <= coord {
                    self.block += 1;
                }
                let block_start = self.block * SKIP;
                if self.pos < block_start {
                    self.pos = block_start;
                }
                let end = (block_start + SKIP).min(coords.len());
                self.scan_from_cursor(coords, coord, end)
            }
            Tier::Empty | Tier::Bitmap { .. } => unreachable!("handled in probe"),
        }
    }

    /// Advances the element cursor to the first coordinate `>= coord` within
    /// `coords[..end]` and reports a hit on equality.
    ///
    /// The cursor advance is a prefix-scan over sorted coordinates, so the
    /// SIMD path measures it with [`simd::run_lt_u32`] (inline scalar head,
    /// then 8-lane compares — consecutive probes usually advance by only a
    /// few elements) instead of a branch per element — this is the
    /// probe-side inner loop the `threshold_probe` bench group measures,
    /// and a direct input to the `probe_gate_factor` crossover.
    #[inline]
    fn scan_from_cursor(
        &mut self,
        coords: &[u32],
        coord: u32,
        end: usize,
    ) -> Option<(usize, Value)> {
        self.pos += simd::run_lt_u32(&coords[self.pos..end], coord);
        if self.pos < end && coords[self.pos] == coord {
            let i = self.pos;
            Some((i, self.fiber.values()[i]))
        } else {
            None
        }
    }
}

/// One [`FiberIndex`] per fiber of a compressed matrix.
///
/// Built once per operand (cost `O(nnz)`), then shared by every tile and
/// every row of the intersection loop.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixIndex {
    fibers: Vec<FiberIndex>,
}

impl MatrixIndex {
    /// Indexes every fiber of `m`.
    pub fn build(m: MatrixView<'_>) -> Self {
        let fibers = (0..m.major_dim())
            .map(|major| FiberIndex::build(m.fiber(major).coords()))
            .collect();
        Self { fibers }
    }

    /// The index of fiber `major`.
    ///
    /// # Panics
    ///
    /// Panics if `major` is out of range.
    pub fn fiber(&self, major: u32) -> &FiberIndex {
        &self.fibers[major as usize]
    }

    /// Number of indexed fibers.
    pub fn len(&self) -> usize {
        self.fibers.len()
    }

    /// Returns `true` when the matrix has no fibers.
    pub fn is_empty(&self) -> bool {
        self.fibers.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CompressedMatrix, Element, Fiber, MajorOrder};

    fn fiber_of(coords: &[u32]) -> Fiber {
        Fiber::from_sorted(
            coords
                .iter()
                .map(|&c| Element::new(c, c as Value + 0.5))
                .collect(),
        )
    }

    #[test]
    fn empty_tier() {
        let f = Fiber::new();
        let idx = FiberIndex::build(f.coords());
        assert_eq!(idx.tier_name(), "empty");
        assert!(idx.is_empty());
        assert_eq!(idx.position(f.coords(), 0), None);
    }

    #[test]
    fn short_tier_positions() {
        let f = fiber_of(&[3, 9, 1000]);
        let idx = FiberIndex::build(f.coords());
        assert_eq!(idx.tier_name(), "short");
        assert_eq!(idx.position(f.coords(), 3), Some(0));
        assert_eq!(idx.position(f.coords(), 1000), Some(2));
        assert_eq!(idx.position(f.coords(), 4), None);
    }

    #[test]
    fn bitmap_tier_positions() {
        // 32 elements over a span of 64: dense enough for the bitmap.
        let coords: Vec<u32> = (0..64).filter(|c| c % 2 == 0).collect();
        let f = fiber_of(&coords);
        let idx = FiberIndex::build(f.coords());
        assert_eq!(idx.tier_name(), "bitmap");
        for (i, &c) in coords.iter().enumerate() {
            assert_eq!(idx.position(f.coords(), c), Some(i));
            assert_eq!(idx.position(f.coords(), c + 1), None);
        }
    }

    #[test]
    fn skip_tier_positions() {
        // 64 elements spread over a huge span: bitmap would need > 64 bits
        // per element, so the skip tier is chosen.
        let coords: Vec<u32> = (0..64).map(|i| i * 10_000).collect();
        let f = fiber_of(&coords);
        let idx = FiberIndex::build(f.coords());
        assert_eq!(idx.tier_name(), "skip");
        for (i, &c) in coords.iter().enumerate() {
            assert_eq!(idx.position(f.coords(), c), Some(i));
        }
        assert_eq!(idx.position(f.coords(), 5), None);
        assert_eq!(idx.position(f.coords(), 629_999), None);
    }

    #[test]
    fn prober_ascending_hits_every_tier() {
        let fibers = [
            fiber_of(&[2, 5, 9]),                                      // short
            fiber_of(&(0..100).map(|i| i * 3).collect::<Vec<_>>()),    // bitmap
            fiber_of(&(0..100).map(|i| i * 9999).collect::<Vec<_>>()), // skip
        ];
        for f in &fibers {
            let idx = FiberIndex::build(f.coords());
            let mut prober = idx.prober(f.as_view());
            let last = *f.coords().last().unwrap();
            for c in 0..=last {
                let want = f
                    .coords()
                    .binary_search(&c)
                    .ok()
                    .map(|i| (i, f.values()[i]));
                assert_eq!(prober.probe(c), want, "tier {} coord {c}", idx.tier_name());
            }
        }
    }

    #[test]
    fn classify_agrees_with_build() {
        let cases: Vec<Vec<u32>> = vec![
            vec![],
            vec![7],
            vec![3, 9, 1000],
            (0..64).filter(|c| c % 2 == 0).collect(),
            (0..64).map(|i| i * 10_000).collect(),
            (0..(SKIP as u32)).map(|i| i * 10_000).collect(), // short boundary
            (0..(SKIP as u32 + 1)).map(|i| i * 10_000).collect(), // just past it
        ];
        for coords in &cases {
            assert_eq!(
                FiberIndex::classify(coords),
                FiberIndex::build(coords).tier_name(),
                "coords {coords:?}"
            );
        }
    }

    #[test]
    fn matrix_index_covers_all_fibers() {
        let m = CompressedMatrix::from_triplets(
            3,
            4,
            &[(0, 1, 1.0), (0, 3, 2.0), (2, 0, 3.0)],
            MajorOrder::Row,
        )
        .unwrap();
        let idx = MatrixIndex::build(m.view());
        assert_eq!(idx.len(), 3);
        assert!(!idx.is_empty());
        assert_eq!(idx.fiber(0).position(m.fiber(0).coords(), 3), Some(1));
        assert!(idx.fiber(1).is_empty());
        assert!(idx.fiber(2).contains(m.fiber(2).coords(), 0));
    }
}
