//! Fibers: compressed rows or columns.
//!
//! Following the paper (§2.1, terminology shared with GAMMA), a *fiber* is
//! one compressed row (CSR) or column (CSC): a list of `(coordinate, value)`
//! duples sorted by coordinate.
//!
//! Storage is struct-of-arrays: one `Vec<u32>` of coordinates and one
//! `Vec<f32>` of values. The merger-reduction hot loops touch only the
//! coordinate stream (one cache line holds 16 coordinates instead of 8
//! interleaved duples), and value moves are contiguous `f32` copies —
//! branch-predictable, cache-dense and auto-vectorizable. The [`Element`]
//! duple remains the API unit: iteration yields `Element`s by value.

use crate::{Element, FiberIndex, Value};

/// An owned fiber: a coordinate-sorted list of [`Element`]s in
/// struct-of-arrays layout.
///
/// The sorted-by-coordinate invariant is maintained by construction and is
/// what allows the merger-reduction network to merge fibers with a single
/// comparator per tree node.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Fiber {
    coords: Vec<u32>,
    values: Vec<Value>,
}

impl Fiber {
    /// Creates an empty fiber.
    pub fn new() -> Self {
        Self {
            coords: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Creates an empty fiber with room for `cap` elements.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            coords: Vec::with_capacity(cap),
            values: Vec::with_capacity(cap),
        }
    }

    /// Builds a fiber from elements that are already coordinate-sorted.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if coordinates are not strictly increasing.
    pub fn from_sorted(elems: Vec<Element>) -> Self {
        debug_assert!(
            elems.windows(2).all(|w| w[0].coord < w[1].coord),
            "fiber coordinates must be strictly increasing"
        );
        let mut coords = Vec::with_capacity(elems.len());
        let mut values = Vec::with_capacity(elems.len());
        for e in elems {
            coords.push(e.coord);
            values.push(e.value);
        }
        Self { coords, values }
    }

    /// Builds a fiber directly from its coordinate and value arrays.
    ///
    /// # Panics
    ///
    /// Panics if the arrays differ in length; panics in debug builds if
    /// coordinates are not strictly increasing.
    pub fn from_parts(coords: Vec<u32>, values: Vec<Value>) -> Self {
        assert_eq!(coords.len(), values.len(), "coord/value arrays must match");
        debug_assert!(
            coords.windows(2).all(|w| w[0] < w[1]),
            "fiber coordinates must be strictly increasing"
        );
        Self { coords, values }
    }

    /// Builds a fiber from arbitrary elements, sorting by coordinate and
    /// accumulating values on duplicate coordinates.
    ///
    /// ```
    /// use flexagon_sparse::{Element, Fiber};
    /// let f = Fiber::from_unsorted(vec![
    ///     Element::new(3, 1.0),
    ///     Element::new(1, 2.0),
    ///     Element::new(3, 4.0),
    /// ]);
    /// assert_eq!(f.len(), 2);
    /// assert_eq!(f.get(3), Some(5.0));
    /// ```
    pub fn from_unsorted(mut elems: Vec<Element>) -> Self {
        elems.sort_by_key(|e| e.coord);
        let mut out = Fiber::with_capacity(elems.len());
        for e in elems {
            match out.coords.last() {
                Some(&last) if last == e.coord => {
                    *out.values.last_mut().expect("parallel arrays") += e.value;
                }
                _ => {
                    out.coords.push(e.coord);
                    out.values.push(e.value);
                }
            }
        }
        out
    }

    /// Number of non-zero elements in the fiber.
    pub fn len(&self) -> usize {
        self.coords.len()
    }

    /// Returns `true` when the fiber holds no elements.
    pub fn is_empty(&self) -> bool {
        self.coords.is_empty()
    }

    /// Appends an element whose coordinate must exceed the current last.
    ///
    /// # Panics
    ///
    /// Panics if `elem.coord` is not strictly greater than the last
    /// coordinate currently in the fiber.
    pub fn push(&mut self, elem: Element) {
        if let Some(&last) = self.coords.last() {
            assert!(
                elem.coord > last,
                "push would break fiber ordering: {} after {}",
                elem.coord,
                last
            );
        }
        self.coords.push(elem.coord);
        self.values.push(elem.value);
    }

    /// Looks up the value at `coord`, if present.
    pub fn get(&self, coord: u32) -> Option<Value> {
        self.coords
            .binary_search(&coord)
            .ok()
            .map(|i| self.values[i])
    }

    /// Borrowed view of the elements.
    pub fn as_view(&self) -> FiberView<'_> {
        FiberView {
            coords: &self.coords,
            values: &self.values,
        }
    }

    /// Iterates over the elements in coordinate order.
    pub fn iter(&self) -> ElementIter<'_> {
        self.as_view().iter()
    }

    /// The coordinate array.
    pub fn coords(&self) -> &[u32] {
        &self.coords
    }

    /// The value array (parallel to [`Fiber::coords`]).
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Consumes the fiber, returning the elements as a vector of duples.
    pub fn into_inner(self) -> Vec<Element> {
        self.coords
            .into_iter()
            .zip(self.values)
            .map(|(c, v)| Element::new(c, v))
            .collect()
    }

    /// Removes all elements, keeping the allocations.
    pub fn clear(&mut self) {
        self.coords.clear();
        self.values.clear();
    }

    /// Returns a fiber with every value scaled by `factor`.
    ///
    /// This is the per-multiplier operation of the streaming phase in the
    /// Outer-Product and Gustavson dataflows: one stationary scalar times an
    /// entire streaming fiber.
    #[must_use]
    pub fn scaled(&self, factor: Value) -> Fiber {
        let mut out = Fiber::with_capacity(self.len());
        out.scale_from(self.as_view(), factor);
        out
    }

    /// Replaces the contents with `view` scaled by `factor`, reusing the
    /// existing allocations — the zero-allocation form of [`Fiber::scaled`]
    /// used by the engine's streaming loops.
    pub fn scale_from(&mut self, view: FiberView<'_>, factor: Value) {
        self.coords.clear();
        self.coords.extend_from_slice(view.coords);
        self.values.clear();
        // Lanewise IEEE multiplies round identically to the scalar map, so
        // the SIMD path is bit-identical.
        simd::extend_scaled_f32(view.values, factor, &mut self.values);
    }

    /// Replaces the contents with an unscaled copy of `view`, reusing the
    /// existing allocations — the recycled-buffer form of
    /// [`FiberView::to_fiber`] used by the sorted-run accumulators.
    pub fn clone_from_view(&mut self, view: FiberView<'_>) {
        self.coords.clear();
        self.coords.extend_from_slice(view.coords);
        self.values.clear();
        self.values.extend_from_slice(view.values);
    }

    /// Dot product against another fiber (sorted intersection).
    ///
    /// This is the Inner-Product dataflow's core operation; the returned
    /// count is the number of effectual multiplications (intersected pairs).
    pub fn dot(&self, other: &Fiber) -> (Value, usize) {
        self.as_view().dot(other.as_view())
    }
}

impl FromIterator<Element> for Fiber {
    /// Collects elements, sorting and accumulating duplicates.
    fn from_iter<I: IntoIterator<Item = Element>>(iter: I) -> Self {
        Fiber::from_unsorted(iter.into_iter().collect())
    }
}

impl Extend<Element> for Fiber {
    /// Extends the fiber; elements are re-sorted and duplicates accumulated.
    fn extend<I: IntoIterator<Item = Element>>(&mut self, iter: I) {
        let mut all: Vec<Element> = std::mem::take(self).into_inner();
        all.extend(iter);
        *self = Fiber::from_unsorted(all);
    }
}

impl<'a> IntoIterator for &'a Fiber {
    type Item = Element;
    type IntoIter = ElementIter<'a>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl IntoIterator for Fiber {
    type Item = Element;
    type IntoIter = std::iter::Map<
        std::iter::Zip<std::vec::IntoIter<u32>, std::vec::IntoIter<Value>>,
        fn((u32, Value)) -> Element,
    >;
    fn into_iter(self) -> Self::IntoIter {
        fn make(pair: (u32, Value)) -> Element {
            Element::new(pair.0, pair.1)
        }
        self.coords.into_iter().zip(self.values).map(make)
    }
}

/// A borrowed, coordinate-sorted span of elements in struct-of-arrays form.
///
/// `FiberView` is the zero-copy unit handed to the networks: tile readers
/// produce views into the L1 structures without copying element data.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FiberView<'a> {
    coords: &'a [u32],
    values: &'a [Value],
}

impl<'a> FiberView<'a> {
    /// Wraps parallel coordinate/value slices that are already sorted.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length; panics in debug builds if
    /// coordinates are not strictly increasing.
    pub fn from_parts(coords: &'a [u32], values: &'a [Value]) -> Self {
        assert_eq!(coords.len(), values.len(), "coord/value slices must match");
        debug_assert!(
            coords.windows(2).all(|w| w[0] < w[1]),
            "fiber view coordinates must be strictly increasing"
        );
        Self { coords, values }
    }

    /// Wraps parallel slices without the ordering debug-check — for storage
    /// spans that are sorted per fiber but not globally (the compressed
    /// matrix's concatenated arrays), and for hot paths where the check is
    /// enforced upstream.
    pub(crate) fn from_parts_unchecked(coords: &'a [u32], values: &'a [Value]) -> Self {
        debug_assert_eq!(coords.len(), values.len(), "coord/value slices must match");
        Self { coords, values }
    }

    /// Number of elements in the view.
    pub fn len(&self) -> usize {
        self.coords.len()
    }

    /// Returns `true` when the view is empty.
    pub fn is_empty(&self) -> bool {
        self.coords.is_empty()
    }

    /// The coordinate slice.
    pub fn coords(&self) -> &'a [u32] {
        self.coords
    }

    /// The value slice (parallel to [`FiberView::coords`]).
    pub fn values(&self) -> &'a [Value] {
        self.values
    }

    /// The element at position `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn element(&self, i: usize) -> Element {
        Element::new(self.coords[i], self.values[i])
    }

    /// Looks up the value at `coord`, if present.
    pub fn get(&self, coord: u32) -> Option<Value> {
        self.coords
            .binary_search(&coord)
            .ok()
            .map(|i| self.values[i])
    }

    /// A sub-span of `len` elements starting at `start` — how the engine
    /// addresses one cluster's chunk of a stationary fiber without copying.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, start: usize, len: usize) -> FiberView<'a> {
        FiberView {
            coords: &self.coords[start..start + len],
            values: &self.values[start..start + len],
        }
    }

    /// Iterates over the elements in coordinate order.
    pub fn iter(&self) -> ElementIter<'a> {
        ElementIter {
            coords: self.coords.iter(),
            values: self.values.iter(),
        }
    }

    /// Copies the view into an owned [`Fiber`].
    pub fn to_fiber(&self) -> Fiber {
        Fiber {
            coords: self.coords.to_vec(),
            values: self.values.to_vec(),
        }
    }

    /// Dot product with effectual-multiplication count (sorted intersection).
    ///
    /// Dispatches between a run-skipping SIMD loop and the classic
    /// two-pointer scan ([`FiberView::dot_scalar`]). Both visit matches in
    /// ascending coordinate order and accumulate with the same operand
    /// order, so the float result is bit-identical either way; the SIMD
    /// loop merely replaces the advance-by-one misses with
    /// [`simd::run_lt_u32`] skips (inline scalar head, then 8-lane
    /// compares) toward the next candidate crossover.
    pub fn dot(&self, other: FiberView<'_>) -> (Value, usize) {
        if simd::level() == simd::Level::Scalar {
            return self.dot_scalar(other);
        }
        let (mut i, mut j) = (0, 0);
        let mut acc = 0.0;
        let mut work = 0;
        let (ac, bc) = (self.coords, other.coords);
        while i < ac.len() && j < bc.len() {
            let (ca, cb) = (ac[i], bc[j]);
            if ca == cb {
                acc += self.values[i] * other.values[j];
                work += 1;
                i += 1;
                j += 1;
            } else if ca < cb {
                // Advance one, and only probe for a run when the same side
                // loses twice in a row — alternating misses stay at scalar
                // cost plus one compare.
                i += 1;
                if i < ac.len() && ac[i] < cb {
                    i += 1 + simd::run_lt_u32(&ac[i + 1..], cb);
                }
            } else {
                j += 1;
                if j < bc.len() && bc[j] < ca {
                    j += 1 + simd::run_lt_u32(&bc[j + 1..], ca);
                }
            }
        }
        (acc, work)
    }

    /// Scalar two-pointer dot product — the `FLEXAGON_SIMD=off` fallback
    /// and the semantic reference the differential tests compare
    /// [`FiberView::dot`] against.
    pub fn dot_scalar(&self, other: FiberView<'_>) -> (Value, usize) {
        let (mut i, mut j) = (0, 0);
        let mut acc = 0.0;
        let mut work = 0;
        let (ac, bc) = (self.coords, other.coords);
        while i < ac.len() && j < bc.len() {
            match ac[i].cmp(&bc[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    acc += self.values[i] * other.values[j];
                    work += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        (acc, work)
    }

    /// Number of coordinates present in both fibers.
    pub fn intersect_count(&self, other: FiberView<'_>) -> usize {
        self.dot(other).1
    }

    /// Dot product via galloping (exponential-search) intersection.
    ///
    /// Drives from the shorter fiber and gallops through the longer one, so
    /// skewed intersections cost `O(short · log(long / short))` instead of
    /// `O(short + long)`. Matches are visited in ascending coordinate order
    /// and multiplication is commutative bit-exactly, so the accumulated sum
    /// is bit-identical to [`FiberView::dot`].
    pub fn dot_gallop(&self, other: FiberView<'_>) -> (Value, usize) {
        let (short, long) = if self.len() <= other.len() {
            (*self, other)
        } else {
            (other, *self)
        };
        let (sc, lc) = (short.coords, long.coords);
        let mut acc = 0.0;
        let mut work = 0;
        let mut j = 0usize;
        for (i, &c) in sc.iter().enumerate() {
            j += gallop(&lc[j..], c);
            if j == lc.len() {
                break;
            }
            if lc[j] == c {
                acc += short.values[i] * long.values[j];
                work += 1;
                j += 1;
            }
        }
        (acc, work)
    }

    /// Dot product probing `other` through its prebuilt [`FiberIndex`].
    ///
    /// Iterates this fiber's coordinates (clamped to `other`'s coordinate
    /// range) and probes the index with a skip-ahead cursor. Matches arrive
    /// in ascending coordinate order, so the sum is bit-identical to
    /// [`FiberView::dot`]. `other_index` must have been built from `other`'s
    /// coordinate slice.
    pub fn dot_probe(&self, other: FiberView<'_>, other_index: &FiberIndex) -> (Value, usize) {
        if self.is_empty() || other.is_empty() {
            return (0.0, 0);
        }
        let oc = other.coords;
        let (o_first, o_last) = (oc[0], oc[oc.len() - 1]);
        // Clamp to the overlap window: coordinates outside it cannot match.
        let start = self.coords.partition_point(|&c| c < o_first);
        let mut acc = 0.0;
        let mut work = 0;
        let mut prober = other_index.prober(other);
        for (i, &c) in self.coords.iter().enumerate().skip(start) {
            if c > o_last {
                break;
            }
            if let Some((_, ov)) = prober.probe(c) {
                acc += self.values[i] * ov;
                work += 1;
            }
        }
        (acc, work)
    }
}

/// Index of the first element of `coords` that is `>= target` — `O(log d)`
/// where `d` is the returned distance.
///
/// On the SIMD path the first [`GALLOP_BLOCK`] coordinates are checked with
/// wide compares before any exponential probing: short advances (the common
/// case when the driving fiber is only moderately sparser than the driven
/// one) resolve in one or two vector compares with no branching ladder.
/// Advances past the block fall through to exponential search seeded at the
/// block boundary. Every path returns the same index.
#[inline]
fn gallop(coords: &[u32], target: u32) -> usize {
    let n = coords.len();
    if n == 0 || coords[0] >= target {
        return 0;
    }
    let mut lo = 0usize;
    let mut step = 1usize;
    if simd::level() != simd::Level::Scalar {
        if n <= GALLOP_BLOCK {
            return simd::prefix_lt_u32(coords, target);
        }
        let head = simd::prefix_lt_u32(&coords[..GALLOP_BLOCK], target);
        if head < GALLOP_BLOCK {
            return head;
        }
        // coords[GALLOP_BLOCK - 1] < target: seed the exponential phase at
        // the block boundary.
        lo = GALLOP_BLOCK - 1;
        step = GALLOP_BLOCK;
    }
    while lo + step < n && coords[lo + step] < target {
        lo += step;
        step <<= 1;
    }
    let hi = (lo + step).min(n);
    lo + 1 + coords[lo + 1..hi].partition_point(|&c| c < target)
}

/// Leading block the SIMD gallop scans with wide compares before falling
/// back to exponential search (two AVX2 vectors).
const GALLOP_BLOCK: usize = 16;

impl<'a> IntoIterator for FiberView<'a> {
    type Item = Element;
    type IntoIter = ElementIter<'a>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// Iterator over a fiber's elements, yielding [`Element`] duples by value.
#[derive(Debug, Clone)]
pub struct ElementIter<'a> {
    coords: std::slice::Iter<'a, u32>,
    values: std::slice::Iter<'a, Value>,
}

impl Iterator for ElementIter<'_> {
    type Item = Element;

    fn next(&mut self) -> Option<Element> {
        let c = *self.coords.next()?;
        let v = *self.values.next()?;
        Some(Element::new(c, v))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.coords.size_hint()
    }
}

impl ExactSizeIterator for ElementIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(pairs: &[(u32, Value)]) -> Fiber {
        Fiber::from_sorted(pairs.iter().map(|&(c, v)| Element::new(c, v)).collect())
    }

    #[test]
    fn from_unsorted_sorts_and_accumulates() {
        let fb = Fiber::from_unsorted(vec![
            Element::new(5, 1.0),
            Element::new(2, 2.0),
            Element::new(5, 3.0),
        ]);
        assert_eq!(fb.len(), 2);
        assert_eq!(fb.get(2), Some(2.0));
        assert_eq!(fb.get(5), Some(4.0));
    }

    #[test]
    fn push_preserves_order() {
        let mut fb = Fiber::new();
        fb.push(Element::new(1, 1.0));
        fb.push(Element::new(4, 2.0));
        assert_eq!(fb.len(), 2);
    }

    #[test]
    #[should_panic(expected = "fiber ordering")]
    fn push_out_of_order_panics() {
        let mut fb = f(&[(4, 1.0)]);
        fb.push(Element::new(2, 1.0));
    }

    #[test]
    fn get_missing_coord_is_none() {
        assert_eq!(f(&[(1, 1.0), (3, 2.0)]).get(2), None);
    }

    #[test]
    fn soa_parts_are_parallel() {
        let fb = f(&[(1, 1.5), (7, 2.5)]);
        assert_eq!(fb.coords(), &[1, 7]);
        assert_eq!(fb.values(), &[1.5, 2.5]);
        let back = Fiber::from_parts(fb.coords().to_vec(), fb.values().to_vec());
        assert_eq!(back, fb);
    }

    #[test]
    fn dot_intersects_sorted_coords() {
        let a = f(&[(0, 1.0), (2, 2.0), (5, 3.0)]);
        let b = f(&[(1, 4.0), (2, 5.0), (5, 6.0)]);
        let (v, work) = a.dot(&b);
        assert_eq!(v, 2.0 * 5.0 + 3.0 * 6.0);
        assert_eq!(work, 2);
    }

    #[test]
    fn dot_with_empty_is_zero() {
        let a = f(&[(0, 1.0)]);
        let (v, work) = a.dot(&Fiber::new());
        assert_eq!(v, 0.0);
        assert_eq!(work, 0);
    }

    #[test]
    fn scaled_scales_all_values() {
        let a = f(&[(0, 1.0), (2, 2.0)]).scaled(3.0);
        assert_eq!(a.get(0), Some(3.0));
        assert_eq!(a.get(2), Some(6.0));
    }

    #[test]
    fn scale_from_reuses_and_matches_scaled() {
        let a = f(&[(0, 1.0), (2, 2.0), (9, 4.0)]);
        let mut scratch = f(&[(5, 5.0)]);
        scratch.scale_from(a.as_view(), 2.5);
        assert_eq!(scratch, a.scaled(2.5));
    }

    #[test]
    fn collect_from_iterator() {
        let fb: Fiber = vec![Element::new(2, 1.0), Element::new(0, 2.0)]
            .into_iter()
            .collect();
        assert_eq!(fb.coords()[0], 0);
    }

    #[test]
    fn extend_merges_duplicates() {
        let mut fb = f(&[(1, 1.0)]);
        fb.extend(vec![Element::new(1, 2.0), Element::new(0, 5.0)]);
        assert_eq!(fb.len(), 2);
        assert_eq!(fb.get(1), Some(3.0));
    }

    #[test]
    fn view_roundtrip() {
        let fb = f(&[(1, 1.0), (9, 2.0)]);
        let v = fb.as_view();
        assert_eq!(v.len(), 2);
        assert_eq!(v.to_fiber(), fb);
    }

    #[test]
    fn view_slice_addresses_chunks() {
        let fb = f(&[(0, 1.0), (3, 2.0), (5, 3.0), (9, 4.0)]);
        let chunk = fb.as_view().slice(1, 2);
        assert_eq!(chunk.len(), 2);
        assert_eq!(chunk.element(0), Element::new(3, 2.0));
        assert_eq!(chunk.element(1), Element::new(5, 3.0));
    }

    #[test]
    fn intersect_count_matches_dot_work() {
        let a = f(&[(0, 1.0), (1, 1.0), (2, 1.0)]);
        let b = f(&[(1, 1.0), (2, 1.0), (3, 1.0)]);
        assert_eq!(a.as_view().intersect_count(b.as_view()), 2);
    }

    #[test]
    fn into_iterator_both_ways() {
        let fb = f(&[(0, 1.0), (1, 2.0)]);
        let borrowed: Vec<u32> = (&fb).into_iter().map(|e| e.coord).collect();
        assert_eq!(borrowed, vec![0, 1]);
        let owned: Vec<Value> = fb.into_iter().map(|e| e.value).collect();
        assert_eq!(owned, vec![1.0, 2.0]);
    }

    #[test]
    fn into_inner_preserves_order() {
        let fb = f(&[(2, 1.0), (4, 2.0)]);
        let elems = fb.into_inner();
        assert_eq!(elems, vec![Element::new(2, 1.0), Element::new(4, 2.0)]);
    }
}
