//! Fibers: compressed rows or columns.
//!
//! Following the paper (§2.1, terminology shared with GAMMA), a *fiber* is
//! one compressed row (CSR) or column (CSC): a list of `(coordinate, value)`
//! duples sorted by coordinate.

use crate::{Element, Value};

/// An owned fiber: a coordinate-sorted list of [`Element`]s.
///
/// The sorted-by-coordinate invariant is maintained by construction and is
/// what allows the merger-reduction network to merge fibers with a single
/// comparator per tree node.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Fiber {
    elems: Vec<Element>,
}

impl Fiber {
    /// Creates an empty fiber.
    pub fn new() -> Self {
        Self { elems: Vec::new() }
    }

    /// Creates an empty fiber with room for `cap` elements.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            elems: Vec::with_capacity(cap),
        }
    }

    /// Builds a fiber from elements that are already coordinate-sorted.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if coordinates are not strictly increasing.
    pub fn from_sorted(elems: Vec<Element>) -> Self {
        debug_assert!(
            elems.windows(2).all(|w| w[0].coord < w[1].coord),
            "fiber coordinates must be strictly increasing"
        );
        Self { elems }
    }

    /// Builds a fiber from arbitrary elements, sorting by coordinate and
    /// accumulating values on duplicate coordinates.
    ///
    /// ```
    /// use flexagon_sparse::{Element, Fiber};
    /// let f = Fiber::from_unsorted(vec![
    ///     Element::new(3, 1.0),
    ///     Element::new(1, 2.0),
    ///     Element::new(3, 4.0),
    /// ]);
    /// assert_eq!(f.len(), 2);
    /// assert_eq!(f.get(3), Some(5.0));
    /// ```
    pub fn from_unsorted(mut elems: Vec<Element>) -> Self {
        elems.sort_by_key(|e| e.coord);
        let mut out: Vec<Element> = Vec::with_capacity(elems.len());
        for e in elems {
            match out.last_mut() {
                Some(last) if last.coord == e.coord => last.value += e.value,
                _ => out.push(e),
            }
        }
        Self { elems: out }
    }

    /// Number of non-zero elements in the fiber.
    pub fn len(&self) -> usize {
        self.elems.len()
    }

    /// Returns `true` when the fiber holds no elements.
    pub fn is_empty(&self) -> bool {
        self.elems.is_empty()
    }

    /// Appends an element whose coordinate must exceed the current last.
    ///
    /// # Panics
    ///
    /// Panics if `elem.coord` is not strictly greater than the last
    /// coordinate currently in the fiber.
    pub fn push(&mut self, elem: Element) {
        if let Some(last) = self.elems.last() {
            assert!(
                elem.coord > last.coord,
                "push would break fiber ordering: {} after {}",
                elem.coord,
                last.coord
            );
        }
        self.elems.push(elem);
    }

    /// Looks up the value at `coord`, if present.
    pub fn get(&self, coord: u32) -> Option<Value> {
        self.elems
            .binary_search_by_key(&coord, |e| e.coord)
            .ok()
            .map(|i| self.elems[i].value)
    }

    /// Borrowed view of the elements.
    pub fn as_view(&self) -> FiberView<'_> {
        FiberView { elems: &self.elems }
    }

    /// Iterates over the elements in coordinate order.
    pub fn iter(&self) -> std::slice::Iter<'_, Element> {
        self.elems.iter()
    }

    /// Consumes the fiber, returning the underlying element vector.
    pub fn into_inner(self) -> Vec<Element> {
        self.elems
    }

    /// Slice of the underlying elements.
    pub fn elements(&self) -> &[Element] {
        &self.elems
    }

    /// Returns a fiber with every value scaled by `factor`.
    ///
    /// This is the per-multiplier operation of the streaming phase in the
    /// Outer-Product and Gustavson dataflows: one stationary scalar times an
    /// entire streaming fiber.
    #[must_use]
    pub fn scaled(&self, factor: Value) -> Fiber {
        Fiber {
            elems: self.elems.iter().map(|e| e.scaled(factor)).collect(),
        }
    }

    /// Dot product against another fiber (sorted intersection).
    ///
    /// This is the Inner-Product dataflow's core operation; the returned
    /// count is the number of effectual multiplications (intersected pairs).
    pub fn dot(&self, other: &Fiber) -> (Value, usize) {
        self.as_view().dot(other.as_view())
    }
}

impl FromIterator<Element> for Fiber {
    /// Collects elements, sorting and accumulating duplicates.
    fn from_iter<I: IntoIterator<Item = Element>>(iter: I) -> Self {
        Fiber::from_unsorted(iter.into_iter().collect())
    }
}

impl Extend<Element> for Fiber {
    /// Extends the fiber; elements are re-sorted and duplicates accumulated.
    fn extend<I: IntoIterator<Item = Element>>(&mut self, iter: I) {
        let mut all = std::mem::take(&mut self.elems);
        all.extend(iter);
        *self = Fiber::from_unsorted(all);
    }
}

impl<'a> IntoIterator for &'a Fiber {
    type Item = &'a Element;
    type IntoIter = std::slice::Iter<'a, Element>;
    fn into_iter(self) -> Self::IntoIter {
        self.elems.iter()
    }
}

impl IntoIterator for Fiber {
    type Item = Element;
    type IntoIter = std::vec::IntoIter<Element>;
    fn into_iter(self) -> Self::IntoIter {
        self.elems.into_iter()
    }
}

/// A borrowed, coordinate-sorted slice of elements.
///
/// `FiberView` is the zero-copy unit handed to the networks: tile readers
/// produce views into the L1 structures without copying element data.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FiberView<'a> {
    elems: &'a [Element],
}

impl<'a> FiberView<'a> {
    /// Wraps an element slice that is already coordinate-sorted.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if coordinates are not strictly increasing.
    pub fn from_sorted(elems: &'a [Element]) -> Self {
        debug_assert!(
            elems.windows(2).all(|w| w[0].coord < w[1].coord),
            "fiber view coordinates must be strictly increasing"
        );
        Self { elems }
    }

    /// Number of elements in the view.
    pub fn len(&self) -> usize {
        self.elems.len()
    }

    /// Returns `true` when the view is empty.
    pub fn is_empty(&self) -> bool {
        self.elems.is_empty()
    }

    /// Underlying element slice.
    pub fn elements(&self) -> &'a [Element] {
        self.elems
    }

    /// Iterates over the elements in coordinate order.
    pub fn iter(&self) -> std::slice::Iter<'a, Element> {
        self.elems.iter()
    }

    /// Copies the view into an owned [`Fiber`].
    pub fn to_fiber(&self) -> Fiber {
        Fiber {
            elems: self.elems.to_vec(),
        }
    }

    /// Dot product with effectual-multiplication count (sorted intersection).
    pub fn dot(&self, other: FiberView<'_>) -> (Value, usize) {
        let (mut i, mut j) = (0, 0);
        let mut acc = 0.0;
        let mut work = 0;
        while i < self.elems.len() && j < other.elems.len() {
            let (a, b) = (self.elems[i], other.elems[j]);
            match a.coord.cmp(&b.coord) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    acc += a.value * b.value;
                    work += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        (acc, work)
    }

    /// Number of coordinates present in both fibers.
    pub fn intersect_count(&self, other: FiberView<'_>) -> usize {
        self.dot(other).1
    }
}

impl<'a> IntoIterator for FiberView<'a> {
    type Item = &'a Element;
    type IntoIter = std::slice::Iter<'a, Element>;
    fn into_iter(self) -> Self::IntoIter {
        self.elems.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(pairs: &[(u32, Value)]) -> Fiber {
        Fiber::from_sorted(pairs.iter().map(|&(c, v)| Element::new(c, v)).collect())
    }

    #[test]
    fn from_unsorted_sorts_and_accumulates() {
        let fb = Fiber::from_unsorted(vec![
            Element::new(5, 1.0),
            Element::new(2, 2.0),
            Element::new(5, 3.0),
        ]);
        assert_eq!(fb.len(), 2);
        assert_eq!(fb.get(2), Some(2.0));
        assert_eq!(fb.get(5), Some(4.0));
    }

    #[test]
    fn push_preserves_order() {
        let mut fb = Fiber::new();
        fb.push(Element::new(1, 1.0));
        fb.push(Element::new(4, 2.0));
        assert_eq!(fb.len(), 2);
    }

    #[test]
    #[should_panic(expected = "fiber ordering")]
    fn push_out_of_order_panics() {
        let mut fb = f(&[(4, 1.0)]);
        fb.push(Element::new(2, 1.0));
    }

    #[test]
    fn get_missing_coord_is_none() {
        assert_eq!(f(&[(1, 1.0), (3, 2.0)]).get(2), None);
    }

    #[test]
    fn dot_intersects_sorted_coords() {
        let a = f(&[(0, 1.0), (2, 2.0), (5, 3.0)]);
        let b = f(&[(1, 4.0), (2, 5.0), (5, 6.0)]);
        let (v, work) = a.dot(&b);
        assert_eq!(v, 2.0 * 5.0 + 3.0 * 6.0);
        assert_eq!(work, 2);
    }

    #[test]
    fn dot_with_empty_is_zero() {
        let a = f(&[(0, 1.0)]);
        let (v, work) = a.dot(&Fiber::new());
        assert_eq!(v, 0.0);
        assert_eq!(work, 0);
    }

    #[test]
    fn scaled_scales_all_values() {
        let a = f(&[(0, 1.0), (2, 2.0)]).scaled(3.0);
        assert_eq!(a.get(0), Some(3.0));
        assert_eq!(a.get(2), Some(6.0));
    }

    #[test]
    fn collect_from_iterator() {
        let fb: Fiber = vec![Element::new(2, 1.0), Element::new(0, 2.0)]
            .into_iter()
            .collect();
        assert_eq!(fb.elements()[0].coord, 0);
    }

    #[test]
    fn extend_merges_duplicates() {
        let mut fb = f(&[(1, 1.0)]);
        fb.extend(vec![Element::new(1, 2.0), Element::new(0, 5.0)]);
        assert_eq!(fb.len(), 2);
        assert_eq!(fb.get(1), Some(3.0));
    }

    #[test]
    fn view_roundtrip() {
        let fb = f(&[(1, 1.0), (9, 2.0)]);
        let v = fb.as_view();
        assert_eq!(v.len(), 2);
        assert_eq!(v.to_fiber(), fb);
    }

    #[test]
    fn intersect_count_matches_dot_work() {
        let a = f(&[(0, 1.0), (1, 1.0), (2, 1.0)]);
        let b = f(&[(1, 1.0), (2, 1.0), (3, 1.0)]);
        assert_eq!(a.as_view().intersect_count(b.as_view()), 2);
    }

    #[test]
    fn into_iterator_both_ways() {
        let fb = f(&[(0, 1.0), (1, 2.0)]);
        let borrowed: Vec<u32> = (&fb).into_iter().map(|e| e.coord).collect();
        assert_eq!(borrowed, vec![0, 1]);
        let owned: Vec<Value> = fb.into_iter().map(|e| e.value).collect();
        assert_eq!(owned, vec![1.0, 2.0]);
    }
}
