//! Property-based tests for the sparse-format substrate.

use flexagon_sparse::{
    merge, reference, CompressedMatrix, DenseMatrix, Element, Fiber, MajorOrder,
};
use proptest::prelude::*;

/// Strategy: a sparse matrix with unique random cells.
fn matrix(max_dim: u32) -> impl Strategy<Value = CompressedMatrix> {
    (1..max_dim, 1..max_dim).prop_flat_map(|(r, c)| {
        let cells = (r * c) as usize;
        proptest::collection::btree_map(0..cells, 0.25f32..4.0, 0..cells.min(100)).prop_map(
            move |entries| {
                let triplets: Vec<(u32, u32, f32)> = entries
                    .into_iter()
                    .map(|(p, v)| (p as u32 / c, p as u32 % c, v))
                    .collect();
                CompressedMatrix::from_triplets(r, c, &triplets, MajorOrder::Row)
                    .expect("unique in-range triplets")
            },
        )
    })
}

proptest! {
    /// CSR -> CSC -> CSR is the identity.
    #[test]
    fn conversion_roundtrip(m in matrix(24)) {
        let back = m.converted(MajorOrder::Col).converted(MajorOrder::Row);
        prop_assert_eq!(m, back);
    }

    /// Conversion preserves every element value and the total count.
    #[test]
    fn conversion_preserves_content(m in matrix(24)) {
        let csc = m.converted(MajorOrder::Col);
        prop_assert_eq!(m.nnz(), csc.nnz());
        prop_assert!(m.approx_eq(&csc, 0.0));
        csc.validate().unwrap();
    }

    /// Reinterpretation as the transpose agrees with an explicit transpose
    /// through the dense path.
    #[test]
    fn reinterpret_is_transpose(m in matrix(16)) {
        let t = m.reinterpret_transposed();
        let dense = DenseMatrix::from_compressed(&m);
        let dense_t = DenseMatrix::from_compressed(&t);
        prop_assert_eq!(dense.rows(), dense_t.cols());
        for r in 0..dense.rows() {
            for c in 0..dense.cols() {
                prop_assert_eq!(dense.get(r, c), dense_t.get(c, r));
            }
        }
    }

    /// Dense round trip: compress(densify(m)) == m for any order.
    #[test]
    fn dense_roundtrip(m in matrix(20)) {
        let d = DenseMatrix::from_compressed(&m);
        prop_assert_eq!(d.to_compressed(MajorOrder::Row), m.clone());
        prop_assert!(d.to_compressed(MajorOrder::Col).approx_eq(&m, 0.0));
    }

    /// The three reference kernels agree with the dense product on
    /// arbitrary pairs.
    #[test]
    fn kernels_agree_with_dense(a in matrix(14), seed in 0u64..100) {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let b = flexagon_sparse::gen::random(a.cols(), 11, 0.35, MajorOrder::Row, &mut rng);
        let want = DenseMatrix::from_compressed(&a)
            .matmul(&DenseMatrix::from_compressed(&b))
            .unwrap();
        let gu = reference::gustavson(&a, &b).unwrap();
        let ip = reference::inner_product(&a, &b.converted(MajorOrder::Col)).unwrap();
        let op = reference::outer_product(&a.converted(MajorOrder::Col), &b).unwrap();
        for c in [gu, ip, op] {
            prop_assert!(DenseMatrix::from_compressed(&c).approx_eq(&want, 1e-2));
        }
    }

    /// Merging a fiber with itself doubles every value.
    #[test]
    fn self_merge_doubles(coords in proptest::collection::btree_set(0u32..60, 0..30)) {
        let f = Fiber::from_sorted(
            coords.iter().map(|&c| Element::new(c, c as f32 + 1.0)).collect(),
        );
        let (m, stats) = merge::merge_two(f.as_view(), f.as_view());
        prop_assert_eq!(m.len(), f.len());
        for (a, b) in m.iter().zip(f.iter()) {
            prop_assert_eq!(a.value, 2.0 * b.value);
        }
        prop_assert_eq!(stats.additions, f.len() as u64);
    }

    /// Merge order does not matter (commutativity up to float tolerance on
    /// disjoint/overlapping fibers built from integer-valued data).
    #[test]
    fn merge_is_commutative(
        xs in proptest::collection::btree_set(0u32..40, 0..20),
        ys in proptest::collection::btree_set(0u32..40, 0..20),
    ) {
        let fx = Fiber::from_sorted(xs.iter().map(|&c| Element::new(c, 1.0)).collect());
        let fy = Fiber::from_sorted(ys.iter().map(|&c| Element::new(c, 2.0)).collect());
        let (ab, _) = merge::merge_two(fx.as_view(), fy.as_view());
        let (ba, _) = merge::merge_two(fy.as_view(), fx.as_view());
        prop_assert_eq!(ab, ba);
    }

    /// Fiber dot product is symmetric.
    #[test]
    fn dot_is_symmetric(
        xs in proptest::collection::btree_set(0u32..30, 0..15),
        ys in proptest::collection::btree_set(0u32..30, 0..15),
    ) {
        let fx = Fiber::from_sorted(xs.iter().map(|&c| Element::new(c, 1.5)).collect());
        let fy = Fiber::from_sorted(ys.iter().map(|&c| Element::new(c, 2.5)).collect());
        let (v1, w1) = fx.dot(&fy);
        let (v2, w2) = fy.dot(&fx);
        prop_assert_eq!(v1, v2);
        prop_assert_eq!(w1, w2);
        prop_assert_eq!(w1, xs.intersection(&ys).count());
    }

    /// Compressed size accounting is exact.
    #[test]
    fn compressed_size_formula(m in matrix(20)) {
        let want = m.nnz() as u64 * 4 + (m.major_dim() as u64 + 1) * 4;
        prop_assert_eq!(m.compressed_size_bytes(), want);
    }
}
