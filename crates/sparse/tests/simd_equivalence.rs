//! Differential tests for the SIMD kernel layer: every dispatching kernel
//! must be bit-identical to its scalar twin — fibers, float bit patterns,
//! and operation counters alike — across all tiers, unaligned lengths,
//! vector tails, and empty inputs.
//!
//! On a machine with a vector unit these tests compare the live SIMD path
//! against the scalar reference; under `FLEXAGON_SIMD=off` (one CI leg runs
//! the whole suite that way) both sides take the scalar path and the tests
//! pin the fallback's self-consistency. The shim's slice primitives are
//! also checked directly against `simd::scalar` so a kernel-level
//! coincidence can't mask a primitive-level divergence.

use flexagon_sparse::{merge, AccumConfig, Element, Fiber, FiberIndex, RowAccum, Value};
use proptest::prelude::*;

/// Strategy: a sorted fiber over `0..space` with up to `max_len` elements.
fn fiber(space: u32, max_len: usize) -> impl Strategy<Value = Fiber> {
    proptest::collection::btree_map(0..space, 0.25f32..4.0, 0..max_len).prop_map(|cells| {
        Fiber::from_sorted(cells.into_iter().map(|(c, v)| Element::new(c, v)).collect())
    })
}

/// Asserts elementwise bit-identity (coords and value bits).
fn assert_bit_identical(got: &Fiber, want: &Fiber) {
    assert_eq!(got.coords(), want.coords());
    for (g, w) in got.values().iter().zip(want.values()) {
        assert_eq!(g.to_bits(), w.to_bits());
    }
}

proptest! {
    /// 2-way merge: the dispatching entry point agrees with the scalar twin
    /// on the merged fiber and on the `MergeStats` counters, for heavily
    /// overlapping inputs (interleave + collisions, run length ~1).
    #[test]
    fn merge_two_matches_scalar_interleaved(a in fiber(256, 80), b in fiber(256, 80)) {
        let (want, want_stats) = merge::merge_two_scalar(a.as_view(), b.as_view());
        let (got, got_stats) = merge::merge_two(a.as_view(), b.as_view());
        assert_bit_identical(&got, &want);
        prop_assert_eq!(got_stats, want_stats);
    }

    /// 2-way merge, skewed shapes: long runs from one side exercise the
    /// vector prefix scans and the bulk run copies, including scalar tails
    /// at every length mod 8.
    #[test]
    fn merge_two_matches_scalar_skewed(a in fiber(10_000, 6), b in fiber(10_000, 300)) {
        let (want, want_stats) = merge::merge_two_scalar(a.as_view(), b.as_view());
        let (got, got_stats) = merge::merge_two(a.as_view(), b.as_view());
        assert_bit_identical(&got, &want);
        prop_assert_eq!(got_stats, want_stats);
    }

    /// Sorted-intersection dot: the dispatching `dot`, the galloping
    /// variant, and the index-probing variant all reproduce the scalar
    /// two-pointer loop bit for bit (sum bits and work count).
    #[test]
    fn dot_family_matches_scalar(a in fiber(512, 120), b in fiber(512, 120)) {
        let (want, want_work) = a.as_view().dot_scalar(b.as_view());
        let (got, got_work) = a.as_view().dot(b.as_view());
        prop_assert_eq!(got.to_bits(), want.to_bits());
        prop_assert_eq!(got_work, want_work);
        let (gal, gal_work) = a.as_view().dot_gallop(b.as_view());
        prop_assert_eq!(gal.to_bits(), want.to_bits());
        prop_assert_eq!(gal_work, want_work);
        let idx = FiberIndex::build(b.coords());
        let (prb, prb_work) = a.as_view().dot_probe(b.as_view(), &idx);
        prop_assert_eq!(prb.to_bits(), want.to_bits());
        prop_assert_eq!(prb_work, want_work);
    }

    /// Same dot family over sparse spans, which flips the probe index into
    /// its short/skip tiers and makes the gallop take long advances.
    #[test]
    fn dot_family_matches_scalar_sparse_spans(
        a in fiber(2_000_000, 40),
        b in fiber(2_000_000, 200),
    ) {
        let (want, want_work) = a.as_view().dot_scalar(b.as_view());
        let (got, got_work) = a.as_view().dot(b.as_view());
        prop_assert_eq!(got.to_bits(), want.to_bits());
        prop_assert_eq!(got_work, want_work);
        let (gal, gal_work) = a.as_view().dot_gallop(b.as_view());
        prop_assert_eq!(gal.to_bits(), want.to_bits());
        prop_assert_eq!(gal_work, want_work);
        let idx = FiberIndex::build(b.coords());
        let (prb, prb_work) = a.as_view().dot_probe(b.as_view(), &idx);
        prop_assert_eq!(prb.to_bits(), want.to_bits());
        prop_assert_eq!(prb_work, want_work);
    }

    /// Index probes: every tier's `position` (short scans and skip-block
    /// scans run through `simd::find_eq_u32`) agrees with binary search,
    /// for present and absent coordinates alike.
    #[test]
    fn index_positions_match_binary_search(f in fiber(100_000, 120), probes in proptest::collection::vec(0u32..100_000, 0..60)) {
        let idx = FiberIndex::build(f.coords());
        for c in f.coords().iter().copied().chain(probes) {
            let want = f.coords().binary_search(&c).ok();
            prop_assert_eq!(idx.position(f.coords(), c), want, "tier {}", idx.tier_name());
        }
    }

    /// Fiber scaling (`extend_scaled_f32`): lanewise SIMD multiplies are
    /// bit-identical to the scalar map at every length and alignment.
    #[test]
    fn scale_from_matches_scalar_map(f in fiber(100_000, 200), k in 0.25f32..4.0) {
        let mut out = Fiber::new();
        out.scale_from(f.as_view(), k);
        prop_assert_eq!(out.coords(), f.coords());
        for (o, i) in out.values().iter().zip(f.values()) {
            prop_assert_eq!(o.to_bits(), (i * k).to_bits());
        }
    }

    /// Accumulator drains (`compress_word` compaction, dense and paged
    /// tiers): bit-identical to the k-way merge reference. Tight spaces
    /// force the dense tier, medium ones the paged tier; partial tail
    /// words are covered by non-multiple-of-64 spans.
    #[test]
    fn accum_drains_match_merge_reference(
        dense in proptest::collection::vec(fiber(197, 50), 1..8),
        paged in proptest::collection::vec(fiber(150_011, 20), 1..8),
    ) {
        for batch in [&dense, &paged] {
            let nnz: u64 = batch.iter().map(|f| f.len() as u64).sum();
            if nnz == 0 {
                continue;
            }
            let lo = batch.iter().filter(|f| !f.is_empty()).map(|f| f.coords()[0]).min().expect("nnz > 0");
            let hi = batch.iter().filter(|f| !f.is_empty()).map(|f| f.coords()[f.len() - 1]).max().expect("nnz > 0");
            let mut acc = RowAccum::new();
            acc.begin(lo, hi, nnz, &AccumConfig::default());
            for f in batch {
                acc.scatter(f.as_view());
            }
            let got = acc.drain();
            let views: Vec<_> = batch.iter().map(Fiber::as_view).collect();
            let (want, _) = merge::merge_accumulate(&views);
            assert_bit_identical(&got, &want);
        }
    }

    /// Shim slice primitives straight against their `simd::scalar`
    /// references, so kernel-level agreement can't hide a primitive bug.
    #[test]
    fn shim_primitives_match_scalar(
        xs in proptest::collection::btree_set(0u32..10_000, 0..200),
        pivot in 0u32..10_000,
    ) {
        let v: Vec<u32> = xs.into_iter().collect();
        prop_assert_eq!(simd::prefix_lt_u32(&v, pivot), simd::scalar::prefix_lt_u32(&v, pivot));
        prop_assert_eq!(simd::run_lt_u32(&v, pivot), simd::scalar::prefix_lt_u32(&v, pivot));
        prop_assert_eq!(simd::find_eq_u32(&v, pivot), simd::scalar::find_eq_u32(&v, pivot));
    }

    /// Shim popcount primitives at every word-count tail.
    #[test]
    fn shim_popcounts_match_scalar(ws in proptest::collection::vec(0u64..u64::MAX, 0..40)) {
        let other: Vec<u64> = ws.iter().map(|w| w.rotate_left(17) ^ 0x0f0f_f0f0_0f0f_f0f0).collect();
        prop_assert_eq!(simd::popcount_u64(&ws), simd::scalar::popcount_u64(&ws));
        prop_assert_eq!(
            simd::and_popcount_u64(&ws, &other),
            simd::scalar::and_popcount_u64(&ws, &other)
        );
    }

    /// Shim compress-store against the trailing_zeros reference, over
    /// arbitrary presence words and non-empty output prefixes.
    #[test]
    fn shim_compress_word_matches_scalar(word in 0u64..u64::MAX, base in 0u32..1_000_000) {
        let vals: Vec<f32> = (0..64).map(|i| (i as f32 - 31.5) * 0.75).collect();
        let (mut c1, mut v1) = (vec![7u32], vec![0.5f32]);
        let (mut c2, mut v2) = (c1.clone(), v1.clone());
        simd::compress_word(word, base, &vals, &mut c1, &mut v1);
        simd::scalar::compress_word(word, base, &vals, &mut c2, &mut v2);
        prop_assert_eq!(c1, c2);
        for (a, b) in v1.iter().zip(&v2) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}

/// The merged-fiber counters must also agree between the dispatching k-way
/// entry point and a scalar-only composition — deterministic shapes that
/// pin the exact `comparisons = pops` contract across radixes.
#[test]
fn kway_radixes_agree_with_scalar_two_way_composition() {
    let mk = |seed: u32| {
        Fiber::from_sorted(
            (0..48u32)
                .filter(|c| (c.wrapping_mul(2654435761).wrapping_add(seed * 131)) % 3 == 0)
                .map(|c| Element::new(c, (seed + 1) as Value))
                .collect(),
        )
    };
    for ways in [2usize, 3, 4, 6, 12] {
        let fibers: Vec<Fiber> = (0..ways as u32).map(mk).collect();
        let views: Vec<_> = fibers.iter().map(Fiber::as_view).collect();
        let (kway, _) = merge::merge_accumulate(&views);
        let mut pairwise = Fiber::new();
        for f in &fibers {
            let (m, _) = merge::merge_two_scalar(pairwise.as_view(), f.as_view());
            pairwise = m;
        }
        assert_bit_identical(&kway, &pairwise);
    }
}

/// Dense drain with set bits in a partial tail word: the SIMD compaction
/// reads a full 64-slot window per presence word, which must be in bounds
/// even when the span ends mid-word.
#[test]
fn dense_drain_partial_tail_word() {
    for span in [65u32, 70, 127, 129] {
        let lo = 1000u32;
        let hi = lo + span - 1;
        let f = Fiber::from_sorted(vec![
            Element::new(lo, 1.5),
            Element::new(lo + span / 2, -2.5),
            Element::new(hi, 3.25),
        ]);
        let mut acc = RowAccum::new();
        acc.begin(lo, hi, 3, &AccumConfig::default());
        acc.scatter(f.as_view());
        let got = acc.drain();
        assert_bit_identical(&got, &f);
    }
}
