//! Equivalence properties for the optimized k-way merge.
//!
//! The loser-tree / sort-based `merge_accumulate` and its 2-way/4-way fast
//! paths must be *element-for-element identical* — coordinates, float bits
//! and collision stats — to two independent models:
//!
//! 1. the pairwise `merge_two` composition (the pre-optimization semantics
//!    of the engine's radix loop), and
//! 2. the dense SpGEMM reference: merging fibers `f_0..f_{F-1}` equals the
//!    row `[1, 1, ..., 1] × B` where `B`'s row `i` is `f_i`, accumulated in
//!    ascending source order — the same float-addition order the MRN's
//!    tie-break-by-source rule fixes.

use flexagon_sparse::{merge, CompressedMatrix, DenseMatrix, Element, Fiber, MajorOrder};
use proptest::prelude::*;

/// Strategy: between `min` and `max` coordinate-sorted fibers over a shared
/// coordinate space, with positive values (no cancellation, so float sums
/// are reproducible across formulations).
fn fibers(min: usize, max: usize) -> impl Strategy<Value = Vec<Fiber>> {
    proptest::collection::vec(
        proptest::collection::btree_map(0u32..48, 0.25f32..4.0, 0..24),
        min..max,
    )
    .prop_map(|maps| {
        maps.into_iter()
            .map(|m| Fiber::from_sorted(m.into_iter().map(|(c, v)| Element::new(c, v)).collect()))
            .collect()
    })
}

/// Folds the fibers with repeated `merge_two` — the old pairwise engine
/// composition — returning the result and the summed collision count.
fn pairwise(fibers: &[Fiber]) -> (Fiber, u64) {
    let mut acc = Fiber::new();
    let mut additions = 0;
    for f in fibers {
        let (merged, stats) = merge::merge_two(acc.as_view(), f.as_view());
        additions += stats.additions;
        acc = merged;
    }
    (acc, additions)
}

/// Checks one fiber set against both models.
fn check_equivalence(fibers: Vec<Fiber>) {
    let views: Vec<_> = fibers.iter().map(Fiber::as_view).collect();
    let total: u64 = views.iter().map(|v| v.len() as u64).sum();
    let (kway, stats) = merge::merge_accumulate(&views);

    // Model 1: pairwise merge_two composition, element-for-element with
    // identical float bits (both accumulate collisions in source order).
    let (pw, pw_additions) = pairwise(&fibers);
    assert_eq!(kway, pw, "k-way merge differs from pairwise composition");
    assert_eq!(stats.additions, pw_additions, "collision counts differ");
    assert_eq!(stats.comparisons, total, "pop-per-element comparison count");

    // Model 2: dense SpGEMM reference. C = ones(1xF) x B where B's row i is
    // fiber i; the dense loop accumulates over k = source in ascending
    // order, matching the merge's tie-break rule bit-for-bit.
    let cols = 48;
    let b = CompressedMatrix::from_fibers(fibers.len() as u32, cols, MajorOrder::Row, fibers)
        .expect("fibers are in range");
    let f_dim = b.rows();
    let ones: Vec<(u32, u32, f32)> = (0..f_dim).map(|k| (0, k, 1.0)).collect();
    let a = CompressedMatrix::from_triplets(1, f_dim, &ones, MajorOrder::Row)
        .expect("ones row is well-formed");
    let dense = DenseMatrix::from_compressed(&a)
        .matmul(&DenseMatrix::from_compressed(&b))
        .expect("dimensions agree");
    for c in 0..cols {
        let want = dense.get(0, c);
        let got = kway.get(c).unwrap_or(0.0);
        assert_eq!(
            got.to_bits(),
            want.to_bits(),
            "coordinate {c}: merge gave {got}, dense SpGEMM gave {want}"
        );
    }
}

proptest! {
    /// Small sets exercise the 1-way copy and the 2-way/4-way fast paths.
    #[test]
    fn fast_paths_match_references(fs in fibers(1, 6)) {
        check_equivalence(fs);
    }

    /// Mid radix exercises the loser tree (5..=8 sources).
    #[test]
    fn loser_tree_matches_references(fs in fibers(5, 9)) {
        check_equivalence(fs);
    }

    /// Wide radix exercises the sort-based path (9..70 sources, spanning
    /// the MRN's 64-leaf hardware radix).
    #[test]
    fn wide_radix_matches_references(fs in fibers(9, 70)) {
        check_equivalence(fs);
    }
}

/// Deterministic sweep across every dispatch boundary, including the exact
/// hardware radix of 64.
#[test]
fn dispatch_boundaries_match_pairwise() {
    for ways in [1usize, 2, 3, 4, 5, 8, 9, 16, 63, 64, 65] {
        let fibers: Vec<Fiber> = (0..ways)
            .map(|s| {
                let pairs: Vec<Element> = (0..48u32)
                    .filter(|c| (c.wrapping_mul(2654435761).wrapping_add(s as u32 * 131)) % 3 == 0)
                    .map(|c| Element::new(c, (s + 1) as f32 * 0.5))
                    .collect();
                Fiber::from_sorted(pairs)
            })
            .collect();
        let views: Vec<_> = fibers.iter().map(Fiber::as_view).collect();
        let (kway, stats) = merge::merge_accumulate(&views);
        let (pw, pw_additions) = pairwise(&fibers);
        assert_eq!(kway, pw, "radix {ways}");
        assert_eq!(stats.additions, pw_additions, "radix {ways} stats");
    }
}
