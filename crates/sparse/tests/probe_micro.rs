//! Lib-level microbench for the bitmap-tier probe cost, run with
//! `cargo test --release -p flexagon-sparse --test probe_micro -- --nocapture --ignored`.
//!
//! This exists alongside `threshold_probe/probe` because the probe loop as
//! compiled into the big bench binary has measured up to ~2x slower than the
//! identical loop in a small binary (codegen/layout, not library cost). When
//! the bench-side crossover moves, run this under both builds before touching
//! `probe_gate_factor` — see the derivation note on that constant.

use flexagon_sparse::{Element, Fiber, FiberIndex};
use std::time::Instant;

fn fixture(len: usize, space: u32, seed: u64) -> Fiber {
    // xorshift-subset: deterministic ~len coords spread over [0, space).
    let mut s = seed | 1;
    let mut coords: Vec<u32> = (0..space)
        .filter(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s as u32) % space < len as u32
        })
        .collect();
    coords.truncate(len);
    Fiber::from_sorted(coords.into_iter().map(|c| Element::new(c, 1.0)).collect())
}

#[test]
#[ignore]
fn bitmap_probe_micro() {
    let fiber = fixture(4096, 16384, 31);
    let index = FiberIndex::build(fiber.coords());
    let stationary = fixture(4096, 16384, 77);
    let k_list: Vec<u32> = stationary.coords().to_vec();
    assert_eq!(index.tier_name(), "bitmap");

    let mut sink = 0.0f32;
    let iters = 20_000u32;
    let start = Instant::now();
    for _ in 0..iters {
        let mut prober = index.prober(fiber.as_view());
        let mut hits = 0u64;
        let mut sum = 0.0f32;
        for &k in &k_list {
            if let Some((_, v)) = prober.probe(k) {
                hits += 1;
                sum += v;
            }
        }
        sink += sum + hits as f32;
    }
    let elapsed = start.elapsed();
    let ns_iter = elapsed.as_nanos() as f64 / iters as f64;
    println!(
        "bitmap probe: {:.1} ns/iter ({:.2} ns/probe, {} probes, sink {})",
        ns_iter,
        ns_iter / k_list.len() as f64,
        k_list.len(),
        sink
    );
}
