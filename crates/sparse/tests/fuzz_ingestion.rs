//! Fuzz targets for the ingestion boundary.
//!
//! The robustness invariant under test: **validated input never panics,
//! and invalid input always yields a typed error** — never a panic, never
//! a silently-accepted malformed structure. Three attack surfaces:
//!
//! * raw CSR/CSC arrays through [`CompressedMatrix::from_raw_parts`],
//! * Matrix Market text (valid streams with mutated bytes) through
//!   [`io::read_matrix_market`],
//! * JSON wire bytes (valid documents with mutated bytes) through the
//!   validating `Deserialize` impl.
//!
//! Case count scales with the `FLEXAGON_FUZZ_CASES` environment variable
//! (default 256; CI's chaos-smoke job runs 10 000+).

use flexagon_sparse::{
    io, validate_matrix, CompressedMatrix, MajorOrder, ValidationConfig, ValidationError,
};
use proptest::prelude::*;

fn cases() -> u32 {
    std::env::var("FLEXAGON_FUZZ_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(256)
}

/// Strategy: a well-formed sparse matrix with unique random cells.
fn matrix(max_dim: u32) -> impl Strategy<Value = CompressedMatrix> {
    (1..max_dim, 1..max_dim, 0u8..2).prop_flat_map(|(r, c, ord)| {
        let cells = (r * c) as usize;
        let order = if ord == 0 {
            MajorOrder::Row
        } else {
            MajorOrder::Col
        };
        proptest::collection::btree_map(0..cells, 0.25f32..4.0, 0..cells.min(100)).prop_map(
            move |entries| {
                let triplets: Vec<(u32, u32, f32)> = entries
                    .into_iter()
                    .map(|(p, v)| (p as u32 / c, p as u32 % c, v))
                    .collect();
                CompressedMatrix::from_triplets(r, c, &triplets, order)
                    .expect("unique in-range triplets")
            },
        )
    })
}

/// Strategy: byte mutations as (position, replacement) pairs; positions are
/// taken modulo the payload length at apply time.
fn mutations() -> impl Strategy<Value = Vec<(usize, u8)>> {
    proptest::collection::vec((0usize..1 << 20, 0u8..=255), 1..8)
}

fn mutate(bytes: &mut [u8], muts: &[(usize, u8)]) {
    if bytes.is_empty() {
        return;
    }
    for &(pos, val) in muts {
        bytes[pos % bytes.len()] = val;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases()))]

    /// Arbitrary raw arrays never panic the constructor: either a
    /// structurally valid matrix comes back, or a typed error does.
    #[test]
    fn raw_parts_never_panic(
        rows in 0u32..20,
        cols in 0u32..20,
        ord in 0u8..2,
        ptr in proptest::collection::vec(0usize..40, 0..24),
        coords in proptest::collection::vec(0u32..40, 0..32),
        values in proptest::collection::vec(-4.0f32..4.0, 0..32),
    ) {
        let order = if ord == 0 { MajorOrder::Row } else { MajorOrder::Col };
        match CompressedMatrix::from_raw_parts(rows, cols, order, ptr, coords, values) {
            Ok(m) => {
                // Accepted structures really are valid: re-validation and a
                // full fiber walk hold up.
                prop_assert!(validate_matrix(&m, &ValidationConfig::permissive()).is_ok());
                let walked: usize = m.fibers().map(|(_, f)| f.len()).sum();
                prop_assert_eq!(walked, m.nnz());
            }
            Err(e) => {
                // Typed rejection, and the error renders.
                prop_assert!(!e.to_string().is_empty());
            }
        }
    }

    /// A valid Matrix Market stream with mutated bytes never panics the
    /// reader; whatever it accepts is structurally valid.
    #[test]
    fn mutated_mtx_never_panics(m in matrix(16), muts in mutations()) {
        let mut bytes = Vec::new();
        io::write_matrix_market(&m, &mut bytes).expect("write to vec");
        mutate(&mut bytes, &muts);
        match io::read_matrix_market(&bytes[..], MajorOrder::Row) {
            Ok(parsed) => prop_assert!(parsed.validate().is_ok()),
            Err(e) => prop_assert!(!e.to_string().is_empty()),
        }
    }

    /// A Matrix Market round trip of an unmutated matrix is exact.
    #[test]
    fn mtx_roundtrip_is_exact(m in matrix(16)) {
        let mut bytes = Vec::new();
        io::write_matrix_market(&m, &mut bytes).expect("write to vec");
        let back = io::read_matrix_market(&bytes[..], m.order()).expect("valid stream");
        prop_assert_eq!(back, m);
    }

    /// Valid JSON with mutated bytes never panics the deserializer; the
    /// validating `Deserialize` impl guarantees whatever it accepts is
    /// structurally sound.
    #[test]
    fn mutated_json_never_panics(m in matrix(16), muts in mutations()) {
        let mut bytes = serde_json::to_string(&m).expect("serialize").into_bytes();
        mutate(&mut bytes, &muts);
        // Mutation may break UTF-8; both layers must reject gracefully.
        let Ok(text) = std::str::from_utf8(&bytes) else { return };
        match serde_json::from_str::<CompressedMatrix>(text) {
            Ok(parsed) => prop_assert!(parsed.validate().is_ok()),
            Err(e) => prop_assert!(!e.to_string().is_empty()),
        }
    }

    /// The untrusted config rejects every non-finite value with a typed
    /// error naming the offending index.
    #[test]
    fn untrusted_config_rejects_non_finite(m in matrix(12), poison_at in 0usize..64, kind in 0u8..3) {
        if m.nnz() == 0 {
            return;
        }
        let bad = match kind {
            0 => f32::NAN,
            1 => f32::INFINITY,
            _ => f32::NEG_INFINITY,
        };
        let idx = poison_at % m.nnz();
        let mut values = m.values().to_vec();
        values[idx] = bad;
        let poisoned = CompressedMatrix::from_raw_parts(
            m.rows(), m.cols(), m.order(), m.ptr().to_vec(), m.coords().to_vec(), values,
        ).expect("structure untouched");
        prop_assert!(validate_matrix(&poisoned, &ValidationConfig::permissive()).is_ok());
        match validate_matrix(&poisoned, &ValidationConfig::untrusted()) {
            Err(ValidationError::NonFiniteValue { index, .. }) => prop_assert_eq!(index, idx),
            other => prop_assert!(false, "expected NonFiniteValue, got {other:?}"),
        }
    }
}
