//! Property tests for the tiered fiber indexes, the indexed/galloping
//! intersection paths, and the memoized CSR↔CSC conversion.

use flexagon_sparse::{
    CompressedMatrix, Element, Fiber, FiberIndex, MajorOrder, MatrixIndex, Value,
};
use proptest::prelude::*;

/// Strategy: a fiber over a configurable coordinate space, so small spaces
/// exercise the bitmap tier, wide ones the short/skip tiers.
fn fiber(space: u32, max_len: usize) -> impl Strategy<Value = Fiber> {
    proptest::collection::btree_map(0..space, 0.25f32..4.0, 0..max_len).prop_map(|cells| {
        Fiber::from_sorted(cells.into_iter().map(|(c, v)| Element::new(c, v)).collect())
    })
}

/// Strategy: a sparse matrix with unique random cells in either order.
fn matrix(max_dim: u32) -> impl Strategy<Value = CompressedMatrix> {
    (1..max_dim, 1..max_dim, 0u32..2).prop_flat_map(|(r, c, col_major)| {
        let cells = (r * c) as usize;
        proptest::collection::btree_map(0..cells, 0.25f32..4.0, 0..cells.min(120)).prop_map(
            move |entries| {
                let triplets: Vec<(u32, u32, Value)> = entries
                    .into_iter()
                    .map(|(p, v)| (p as u32 / c, p as u32 % c, v))
                    .collect();
                let order = if col_major == 1 {
                    MajorOrder::Col
                } else {
                    MajorOrder::Row
                };
                CompressedMatrix::from_triplets(r, c, &triplets, order)
                    .expect("unique in-range triplets")
            },
        )
    })
}

proptest! {
    /// Galloping intersection returns bit-identical sums and identical work
    /// counts to the naive two-pointer scan, on every span shape.
    #[test]
    fn gallop_matches_naive(
        a in fiber(50_000, 40),
        b in fiber(50_000, 40),
        dense_a in fiber(96, 40),
        dense_b in fiber(96, 40),
    ) {
        for (x, y) in [(&a, &b), (&dense_a, &dense_b), (&a, &dense_b)] {
            let (v_naive, w_naive) = x.as_view().dot(y.as_view());
            let (v_gallop, w_gallop) = x.as_view().dot_gallop(y.as_view());
            prop_assert_eq!(v_naive.to_bits(), v_gallop.to_bits());
            prop_assert_eq!(w_naive, w_gallop);
        }
    }

    /// Index probing returns bit-identical sums and identical work counts to
    /// the naive scan, whichever tier the index picked.
    #[test]
    fn probe_matches_naive(
        a in fiber(50_000, 40),
        b in fiber(50_000, 40),
        dense_a in fiber(96, 40),
        dense_b in fiber(96, 40),
    ) {
        for (x, y) in [(&a, &b), (&dense_a, &dense_b), (&dense_a, &b), (&a, &dense_b)] {
            let index = FiberIndex::build(y.coords());
            let (v_naive, w_naive) = x.as_view().dot(y.as_view());
            let (v_probe, w_probe) = x.as_view().dot_probe(y.as_view(), &index);
            prop_assert_eq!(v_naive.to_bits(), v_probe.to_bits(),
                "tier {}", index.tier_name());
            prop_assert_eq!(w_naive, w_probe);
        }
    }

    /// `position` agrees with binary search for every coordinate in and
    /// around the fiber, and the skip-ahead prober agrees when queried in
    /// ascending order.
    #[test]
    fn position_matches_binary_search(f in fiber(2_000, 64)) {
        let index = FiberIndex::build(f.coords());
        prop_assert_eq!(index.len(), f.len());
        let mut prober = index.prober(f.as_view());
        let upper = f.coords().last().map_or(4, |&c| c + 3);
        for coord in 0..upper {
            let want = f.coords().binary_search(&coord).ok();
            prop_assert_eq!(index.position(f.coords(), coord), want);
            prop_assert_eq!(index.contains(f.coords(), coord), want.is_some());
            let probed = prober.probe(coord);
            prop_assert_eq!(probed.map(|(i, _)| i), want);
            if let (Some((i, v)), Some(j)) = (probed, want) {
                prop_assert_eq!(i, j);
                prop_assert_eq!(v.to_bits(), f.values()[j].to_bits());
            }
        }
    }

    /// A matrix index probes every fiber exactly as per-fiber indexes do.
    #[test]
    fn matrix_index_matches_fiber_indexes(m in matrix(24)) {
        let index = MatrixIndex::build(m.view());
        prop_assert_eq!(index.len(), m.major_dim() as usize);
        for (major, fv) in m.fibers() {
            let standalone = FiberIndex::build(fv.coords());
            for coord in 0..m.minor_dim() {
                prop_assert_eq!(
                    index.fiber(major).position(fv.coords(), coord),
                    standalone.position(fv.coords(), coord)
                );
            }
        }
    }

    /// CSR→CSC→CSR is the identity, from either starting order.
    #[test]
    fn conversion_roundtrip_is_identity(m in matrix(24)) {
        let flipped = m.converted(m.order().flipped());
        flipped.validate().unwrap();
        let back = flipped.converted(m.order());
        prop_assert_eq!(&m, &back);
    }

    /// Conversion preserves the stats surface: nnz, density, sparsity,
    /// compressed size shape, and every stored value.
    #[test]
    fn conversion_preserves_stats(m in matrix(24)) {
        let flipped = m.converted(m.order().flipped());
        prop_assert_eq!(m.nnz(), flipped.nnz());
        prop_assert_eq!(m.rows(), flipped.rows());
        prop_assert_eq!(m.cols(), flipped.cols());
        prop_assert!((m.density() - flipped.density()).abs() < 1e-12);
        prop_assert!((m.sparsity_percent() - flipped.sparsity_percent()).abs() < 1e-12);
        prop_assert!(m.approx_eq(&flipped, 0.0));
        for r in 0..m.rows() {
            for c in 0..m.cols() {
                prop_assert_eq!(m.get(r, c).to_bits(), flipped.get(r, c).to_bits());
            }
        }
    }

    /// The memoized transpose plan changes nothing observable: repeated
    /// conversions and conversions of fresh clones are all identical.
    #[test]
    fn conversion_memo_is_transparent(m in matrix(24)) {
        let target = m.order().flipped();
        let first = m.converted(target);   // builds the plan
        let second = m.converted(target);  // reuses it
        let of_clone = m.clone().converted(target); // fresh plan
        prop_assert_eq!(&first, &second);
        prop_assert_eq!(&first, &of_clone);
        prop_assert_eq!(&m, &m.clone());
    }
}
