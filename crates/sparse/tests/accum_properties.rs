//! Property tests for the tiered psum accumulators: every tier's drain must
//! be bit-identical to the k-way merge reference over the same scaled
//! fibers in the same source order — including reuse across batches, the
//! cross-tile partial-reload pattern of the Outer-Product loop, and the
//! runs tier's merge-on-overflow collapse.

use flexagon_sparse::{merge, AccumConfig, AccumTier, Element, Fiber, FiberView, RowAccum, Value};
use proptest::prelude::*;

/// Strategy: a fiber over a configurable coordinate space with a scale
/// factor, so small spaces exercise the dense tier, medium the paged one,
/// and huge spans the sorted-run list.
fn scaled_fiber(space: u32, max_len: usize) -> impl Strategy<Value = (Fiber, Value)> {
    (
        proptest::collection::btree_map(0..space, 0.25f32..4.0, 0..max_len),
        0.25f32..4.0,
    )
        .prop_map(|(cells, factor)| {
            let fiber =
                Fiber::from_sorted(cells.into_iter().map(|(c, v)| Element::new(c, v)).collect());
            (fiber, factor)
        })
}

/// Strategy: a batch of scaled fibers over one coordinate space.
fn batch(space: u32, ways: usize, max_len: usize) -> impl Strategy<Value = Vec<(Fiber, Value)>> {
    proptest::collection::vec(scaled_fiber(space, max_len), 1..ways)
}

/// The k-way merge reference: scale every fiber, merge in source order.
fn reference(fibers: &[(Fiber, Value)]) -> Fiber {
    let scaled: Vec<Fiber> = fibers.iter().map(|(f, s)| f.scaled(*s)).collect();
    let views: Vec<FiberView<'_>> = scaled.iter().map(Fiber::as_view).collect();
    merge::merge_accumulate(&views).0
}

/// Span and element count of a batch — the engine's tier-selection inputs.
fn span_of(fibers: &[(Fiber, Value)]) -> Option<(u32, u32, u64)> {
    let mut lo = u32::MAX;
    let mut hi = 0;
    let mut nnz = 0u64;
    for (f, _) in fibers {
        if f.is_empty() {
            continue;
        }
        lo = lo.min(f.coords()[0]);
        hi = hi.max(f.coords()[f.len() - 1]);
        nnz += f.len() as u64;
    }
    (nnz > 0).then_some((lo, hi, nnz))
}

/// Asserts elementwise bit-identity (coords and value bits).
fn assert_bit_identical(got: &Fiber, want: &Fiber) {
    assert_eq!(got.coords(), want.coords());
    for (g, w) in got.values().iter().zip(want.values()) {
        assert_eq!(g.to_bits(), w.to_bits());
    }
}

/// Scatters a batch through `acc` (arming it from the batch's span) and
/// checks the drain against the merge reference. Returns the drained fiber.
fn run_batch(acc: &mut RowAccum, fibers: &[(Fiber, Value)], cfg: &AccumConfig) -> Fiber {
    let Some((lo, hi, nnz)) = span_of(fibers) else {
        return Fiber::new();
    };
    acc.begin(lo, hi, nnz, cfg);
    for (f, s) in fibers {
        acc.scatter_scaled(f.as_view(), *s);
    }
    let got = acc.drain();
    assert_bit_identical(&got, &reference(fibers));
    got
}

proptest! {
    /// Dense tier (tight spans): drain is bit-identical to the k-way merge.
    #[test]
    fn dense_tier_matches_merge(fibers in batch(96, 12, 40)) {
        let cfg = AccumConfig::default();
        if let Some((lo, hi, nnz)) = span_of(&fibers) {
            // A span this tight must pick an array tier, never runs.
            let tier = AccumTier::select((hi - lo) as u64 + 1, nnz, &cfg);
            prop_assert_ne!(tier, AccumTier::Runs);
        }
        run_batch(&mut RowAccum::new(), &fibers, &cfg);
    }

    /// Paged tier (medium spans): drain is bit-identical to the merge.
    #[test]
    fn paged_tier_matches_merge(fibers in batch(200_000, 8, 30)) {
        run_batch(&mut RowAccum::new(), &fibers, &AccumConfig::default());
    }

    /// Runs tier (huge sparse spans): drain is bit-identical to the merge,
    /// and an aggressive merge-on-overflow limit changes nothing.
    #[test]
    fn runs_tier_matches_merge(fibers in batch(2_000_000_000, 12, 30)) {
        run_batch(&mut RowAccum::new(), &fibers, &AccumConfig::default());
        let eager = AccumConfig {
            runs_merge_limit: 2,
            ..AccumConfig::default()
        };
        run_batch(&mut RowAccum::new(), &fibers, &eager);
    }

    /// One accumulator reused across per-tile batches, with the cross-tile
    /// partial reload: each tile's drain matches its own merge, and the
    /// final cross-tile merge of the drained partials (the Outer-Product
    /// pending path, replayed through a fresh accumulator pass like
    /// `merge_row_fibers` does) matches merging the partial fibers.
    #[test]
    fn cross_tile_partials_reload_bit_identical(
        tile_a in batch(50_000, 8, 30),
        tile_b in batch(50_000, 8, 30),
        tile_c in batch(128, 8, 40),
    ) {
        let cfg = AccumConfig::default();
        let mut acc = RowAccum::new();
        let mut parts: Vec<Fiber> = Vec::new();
        for tile in [&tile_a, &tile_b, &tile_c] {
            let part = run_batch(&mut acc, tile, &cfg);
            if !part.is_empty() {
                parts.push(part);
            }
        }
        if parts.len() >= 2 {
            // Reference final merge of the reloaded partials.
            let views: Vec<FiberView<'_>> = parts.iter().map(Fiber::as_view).collect();
            let (want, _) = merge::merge_accumulate(&views);
            // Accumulator replay of the same pass.
            let lo = parts.iter().map(|p| p.coords()[0]).min().expect("non-empty");
            let hi = parts
                .iter()
                .map(|p| p.coords()[p.len() - 1])
                .max()
                .expect("non-empty");
            let nnz = parts.iter().map(|p| p.len() as u64).sum();
            acc.begin(lo, hi, nnz, &cfg);
            for p in &parts {
                acc.scatter(p.as_view());
            }
            let got = acc.drain();
            assert_bit_identical(&got, &want);
        }
    }

    /// `push_run` over owned chunk fibers (the Gustavson split-row path)
    /// matches merging the chunks in arrival order.
    #[test]
    fn chunk_runs_match_merge(chunks in batch(1_000_000, 10, 30)) {
        let cfg = AccumConfig::default();
        let owned: Vec<Fiber> = chunks.iter().map(|(f, s)| f.scaled(*s)).collect();
        let views: Vec<FiberView<'_>> = owned.iter().map(Fiber::as_view).collect();
        let (want, _) = merge::merge_accumulate(&views);
        let mut acc = RowAccum::new();
        acc.begin_runs(&cfg);
        for f in &owned {
            acc.push_run(f.clone());
        }
        let got = acc.drain();
        assert_bit_identical(&got, &want);
    }
}
