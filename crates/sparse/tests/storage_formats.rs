//! Property-based tests for the storage-format tier ([`FormattedMatrix`]
//! and friends): lossless formats are exact round-trips on arbitrary
//! structure, the ELL fallback respects its padding budget, and the
//! quantized tier honours its documented error bound.

use flexagon_sparse::{
    gen, CompressedMatrix, FiberFormat, FormatStats, FormattedMatrix, MajorOrder,
};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Strategy: a sparse matrix with unique random cells in either order.
fn matrix(max_dim: u32) -> impl Strategy<Value = CompressedMatrix> {
    (1..max_dim, 1..max_dim, 0u8..2).prop_flat_map(|(r, c, col_major)| {
        let cells = (r * c) as usize;
        let order = if col_major == 1 {
            MajorOrder::Col
        } else {
            MajorOrder::Row
        };
        proptest::collection::btree_map(0..cells, -4.0f32..4.0, 0..cells.min(120)).prop_map(
            move |entries| {
                let triplets: Vec<(u32, u32, f32)> = entries
                    .into_iter()
                    .map(|(p, v)| (p as u32 / c, p as u32 % c, v))
                    .collect();
                CompressedMatrix::from_triplets(r, c, &triplets, order)
                    .expect("unique in-range triplets")
            },
        )
    })
}

proptest! {
    /// Every lossless format is an exact (bit-identical) round-trip on
    /// arbitrary structure, and its self-check validates.
    #[test]
    fn lossless_formats_roundtrip_exactly(m in matrix(32)) {
        for format in FiberFormat::ALL {
            if !format.is_lossless() {
                continue;
            }
            let enc = FormattedMatrix::encode(&m, format);
            prop_assert!(enc.validate().is_ok(), "{format} self-check failed");
            prop_assert_eq!(enc.nnz(), m.nnz());
            prop_assert_eq!(&enc.decode(), &m, "{} round-trip differs", format);
        }
    }

    /// Quantization error stays within the documented bound: for every
    /// element, `|v - v'| <= max_abs_in_block / 254` (the per-block scale
    /// is `max_abs / 127` and values round to the nearest step).
    #[test]
    fn quantization_error_is_bounded(m in matrix(32)) {
        let dec = FormattedMatrix::encode(&m, FiberFormat::Quant8).decode();
        prop_assert_eq!(dec.nnz(), m.nnz(), "quantization must keep structure");
        prop_assert_eq!(dec.coords(), m.coords());
        prop_assert_eq!(dec.ptr(), m.ptr());
        // Walk elements in storage order; blocks are QUANT_BLOCK-sized
        // runs of that same order.
        let orig = m.values();
        let got = dec.values();
        for (block_idx, block) in orig.chunks(flexagon_sparse::format::QUANT_BLOCK).enumerate() {
            let max_abs = block.iter().fold(0.0f32, |acc, v| acc.max(v.abs()));
            let bound = f64::from(max_abs) / 254.0 + 1e-9;
            let start = block_idx * flexagon_sparse::format::QUANT_BLOCK;
            for (i, &want) in block.iter().enumerate() {
                let err = f64::from((got[start + i] - want).abs());
                prop_assert!(
                    err <= bound,
                    "element {} err {err} exceeds bound {bound} (max_abs {max_abs})",
                    start + i
                );
            }
        }
    }

    /// The ELL encoder never allocates past its padding budget: either the
    /// fixed-width grid fits `4*nnz + 1024` cells, or the encoder falls
    /// back to SoA storage — in both cases the round-trip stays exact.
    #[test]
    fn ell_respects_the_padding_budget(m in matrix(32)) {
        let enc = FormattedMatrix::encode(&m, FiberFormat::Ell);
        if enc.storage_kind() == "ell" {
            let stats = FormatStats::of(&m);
            let cells = (stats.ell_waste + 1.0) * m.nnz() as f64;
            prop_assert!(
                cells <= (4 * m.nnz() + 1024) as f64 + 0.5,
                "grid of {cells} cells exceeds the budget for nnz {}",
                m.nnz()
            );
        } else {
            prop_assert_eq!(enc.storage_kind(), "soa", "fallback must be tagged soa");
        }
        prop_assert_eq!(&enc.decode(), &m);
    }

    /// Format statistics are scale-consistent: fills and fractions stay in
    /// `[0, 1]`, waste and CV are non-negative, on arbitrary structure.
    #[test]
    fn format_stats_stay_in_range(m in matrix(32)) {
        let s = FormatStats::of(&m);
        prop_assert_eq!(s.nnz, m.nnz());
        prop_assert!((0.0..=1.0).contains(&s.block_fill4), "fill4 {}", s.block_fill4);
        prop_assert!((0.0..=1.0).contains(&s.block_fill8), "fill8 {}", s.block_fill8);
        prop_assert!((0.0..=1.0).contains(&s.bitmap_fiber_fraction));
        prop_assert!(s.row_len_cv >= 0.0);
        prop_assert!(s.ell_waste >= 0.0);
        // 8-wide blocks can never be fuller than 4-wide blocks of the
        // same coordinates (each 8-block splits into at most two 4-blocks).
        prop_assert!(s.block_fill8 <= s.block_fill4 + 1e-12);
    }
}

/// The adversarial generator sweep (maximal skew, empty fibers, dense
/// blocks, degenerate shapes) round-trips through every lossless format —
/// the deterministic companion to the proptests above.
#[test]
fn adversarial_sweep_roundtrips_all_lossless_formats() {
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    let scenarios = gen::adversarial_sweep(&mut rng);
    assert!(scenarios.len() >= 7, "sweep lost scenarios");
    for s in &scenarios {
        for m in [&s.a, &s.b] {
            for format in FiberFormat::ALL {
                if !format.is_lossless() {
                    continue;
                }
                let enc = FormattedMatrix::encode(m, format);
                assert!(enc.validate().is_ok(), "{}: {format} invalid", s.name);
                assert_eq!(&enc.decode(), m, "{}: {format} round-trip differs", s.name);
            }
        }
    }
}

/// Blocked footprints beat SoA on dense-clustered structure and the
/// stats see it: block fill is high where block_sparse generated it.
#[test]
fn blocked_footprint_wins_on_clustered_structure() {
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let clustered = gen::block_sparse(256, 256, 8, 0.3, MajorOrder::Row, &mut rng);
    let soa = FormattedMatrix::encode(&clustered, FiberFormat::Soa).footprint_bytes();
    let bcsr = FormattedMatrix::encode(&clustered, FiberFormat::Bcsr8).footprint_bytes();
    assert!(
        bcsr < soa,
        "bcsr8 ({bcsr} B) should be smaller than soa ({soa} B) on 8-aligned blocks"
    );
    let stats = FormatStats::of(&clustered);
    assert!(
        stats.block_fill8 > 0.9,
        "8-aligned dense blocks should fill 8-wide blocks (got {})",
        stats.block_fill8
    );
}
