//! Analytical area and power models (paper §5.3, Table 8, Figs. 17–18).
//!
//! The paper synthesizes its building blocks with Synopsys DC + Cadence
//! Innovus (TSMC 28 nm GP LVT, 800 MHz) and models SRAMs with CACTI 7.0.
//! Those tools are proprietary; this crate substitutes a parametric
//! component model whose constants are calibrated so the 64-multiplier
//! configuration reproduces Table 8 exactly, and whose scaling rules
//! (linear datapath growth, capacity-proportional SRAM) let the harness
//! explore other sizes (e.g. the naive-design comparison of Fig. 17 and
//! the ablations). See DESIGN.md §4 for the substitution rationale.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod components;
pub mod energy;
mod naive;
mod table8;

pub use components::{dn_cost, mn_cost, psram_cost, rn_cost, str_cache_cost, AreaPower, RnKind};
pub use naive::{naive_design, NaiveComparison, NaiveDesign};
pub use table8::{table8_rows, AcceleratorKind, Table8Row};

/// Performance/area efficiency (Fig. 18): a speed-up divided by the design's
/// area normalized to a reference area.
///
/// The paper normalizes both speed-ups and areas to the SIGMA-like design;
/// `perf_per_area(speedup, area, reference_area)` reproduces that metric.
pub fn perf_per_area(speedup: f64, area_mm2: f64, reference_area_mm2: f64) -> f64 {
    if area_mm2 <= 0.0 {
        return 0.0;
    }
    speedup / (area_mm2 / reference_area_mm2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perf_per_area_normalizes() {
        // Same speed, same area: efficiency 1.
        assert_eq!(perf_per_area(1.0, 4.21, 4.21), 1.0);
        // Twice as fast but 25% bigger: efficiency 1.6.
        let e = perf_per_area(2.0, 5.28, 4.22);
        assert!((e - 2.0 / (5.28 / 4.22)).abs() < 1e-12);
    }

    #[test]
    fn zero_area_is_guarded() {
        assert_eq!(perf_per_area(2.0, 0.0, 4.0), 0.0);
    }
}
