//! Per-component area/power models, calibrated to Table 8.

use serde::{Deserialize, Serialize};
use std::ops::Add;

/// Post-layout cost of a component: area in mm² and power in mW
/// (TSMC 28 nm GP LVT at 800 MHz, like the paper).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct AreaPower {
    /// Area in mm².
    pub area_mm2: f64,
    /// Power in mW.
    pub power_mw: f64,
}

impl AreaPower {
    /// Creates a cost pair.
    pub fn new(area_mm2: f64, power_mw: f64) -> Self {
        Self { area_mm2, power_mw }
    }

    /// Scales both area and power by `factor`.
    #[must_use]
    pub fn scaled(self, factor: f64) -> Self {
        Self::new(self.area_mm2 * factor, self.power_mw * factor)
    }
}

impl Add for AreaPower {
    type Output = AreaPower;
    fn add(self, rhs: AreaPower) -> AreaPower {
        AreaPower::new(self.area_mm2 + rhs.area_mm2, self.power_mw + rhs.power_mw)
    }
}

impl std::iter::Sum for AreaPower {
    fn sum<I: Iterator<Item = AreaPower>>(iter: I) -> AreaPower {
        iter.fold(AreaPower::default(), Add::add)
    }
}

/// Reference width the Table 8 numbers were measured at.
const REF_MULTIPLIERS: u32 = 64;

/// Table 8 calibration points (64-multiplier designs).
mod calib {
    use super::AreaPower;

    /// Distribution network (tree), all designs.
    pub const DN: AreaPower = AreaPower {
        area_mm2: 0.04,
        power_mw: 2.18,
    };
    /// Multiplier network (linear array), all designs.
    pub const MN: AreaPower = AreaPower {
        area_mm2: 0.07,
        power_mw: 3.29,
    };
    /// SIGMA's FAN reduction network.
    pub const FAN: AreaPower = AreaPower {
        area_mm2: 0.17,
        power_mw: 248.0,
    };
    /// SpArch/GAMMA merger tree.
    pub const MERGER: AreaPower = AreaPower {
        area_mm2: 0.07,
        power_mw: 64.48,
    };
    /// Flexagon's merger-reduction network.
    pub const MRN: AreaPower = AreaPower {
        area_mm2: 0.21,
        power_mw: 312.0,
    };
    /// 1 MiB streaming cache.
    pub const CACHE_1MIB: AreaPower = AreaPower {
        area_mm2: 3.93,
        power_mw: 2142.0,
    };
    /// 256 KiB PSRAM.
    pub const PSRAM_256KIB: AreaPower = AreaPower {
        area_mm2: 1.03,
        power_mw: 538.0,
    };
}

/// Reduction/merger network flavour (Table 7's RN row).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RnKind {
    /// SIGMA's FAN: flexible-sized adder reductions only.
    Fan,
    /// SpArch/GAMMA merger: comparator merging only.
    Merger,
    /// Flexagon's MRN: both, on one tree.
    Mrn,
}

/// Distribution network cost for `multipliers` output ports.
///
/// Trees grow linearly in leaf count to first order (the paper reports the
/// same DN cost for all four 64-wide designs).
pub fn dn_cost(multipliers: u32) -> AreaPower {
    calib::DN.scaled(multipliers as f64 / REF_MULTIPLIERS as f64)
}

/// Multiplier network cost for `multipliers` units.
pub fn mn_cost(multipliers: u32) -> AreaPower {
    calib::MN.scaled(multipliers as f64 / REF_MULTIPLIERS as f64)
}

/// Reduction/merger network cost for `multipliers` leaves.
///
/// A tree of `n` leaves has `n - 1` nodes, so cost scales with
/// `(n - 1) / 63` from the 64-leaf calibration point.
pub fn rn_cost(kind: RnKind, multipliers: u32) -> AreaPower {
    let base = match kind {
        RnKind::Fan => calib::FAN,
        RnKind::Merger => calib::MERGER,
        RnKind::Mrn => calib::MRN,
    };
    base.scaled((multipliers.saturating_sub(1)) as f64 / (REF_MULTIPLIERS - 1) as f64)
}

/// Streaming-cache cost for `bytes` of capacity.
///
/// SRAM macros are dominated by the bit array: capacity-proportional to
/// first order (CACTI's sub-linear periphery effects are below the
/// precision Table 8 reports).
pub fn str_cache_cost(bytes: u64) -> AreaPower {
    calib::CACHE_1MIB.scaled(bytes as f64 / (1u64 << 20) as f64)
}

/// PSRAM cost for `bytes` of capacity (zero bytes = structure absent, as in
/// the SIGMA-like design).
pub fn psram_cost(bytes: u64) -> AreaPower {
    calib::PSRAM_256KIB.scaled(bytes as f64 / (256u64 << 10) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    #[test]
    fn calibration_points_reproduce_table8() {
        assert!(close(dn_cost(64).area_mm2, 0.04));
        assert!(close(dn_cost(64).power_mw, 2.18));
        assert!(close(mn_cost(64).area_mm2, 0.07));
        assert!(close(rn_cost(RnKind::Fan, 64).area_mm2, 0.17));
        assert!(close(rn_cost(RnKind::Fan, 64).power_mw, 248.0));
        assert!(close(rn_cost(RnKind::Merger, 64).area_mm2, 0.07));
        assert!(close(rn_cost(RnKind::Mrn, 64).area_mm2, 0.21));
        assert!(close(rn_cost(RnKind::Mrn, 64).power_mw, 312.0));
        assert!(close(str_cache_cost(1 << 20).area_mm2, 3.93));
        assert!(close(psram_cost(256 << 10).area_mm2, 1.03));
        assert!(close(psram_cost(256 << 10).power_mw, 538.0));
    }

    #[test]
    fn gamma_psram_is_half() {
        // Table 8: GAMMA-like PSRAM 0.51 mm² / 269 mW (half of 1.03 / 538).
        let half = psram_cost(128 << 10);
        assert!(close(half.area_mm2, 0.515));
        assert!(close(half.power_mw, 269.0));
    }

    #[test]
    fn costs_scale_with_size() {
        assert!(dn_cost(128).area_mm2 > dn_cost(64).area_mm2);
        assert!(rn_cost(RnKind::Mrn, 128).area_mm2 > rn_cost(RnKind::Mrn, 64).area_mm2);
        assert!(str_cache_cost(2 << 20).power_mw > str_cache_cost(1 << 20).power_mw);
        assert!(close(psram_cost(0).area_mm2, 0.0));
    }

    #[test]
    fn mrn_premium_matches_paper_claims() {
        // "our MRN is 28% ... larger than the area of the FAN".
        let mrn = rn_cost(RnKind::Mrn, 64).area_mm2;
        let fan = rn_cost(RnKind::Fan, 64).area_mm2;
        let premium = mrn / fan - 1.0;
        assert!((0.2..0.3).contains(&premium), "premium {premium}");
        // "the MRN consumes 25% ... more than the FAN RN".
        let p = rn_cost(RnKind::Mrn, 64).power_mw / rn_cost(RnKind::Fan, 64).power_mw - 1.0;
        assert!((0.2..0.3).contains(&p), "power premium {p}");
    }

    #[test]
    fn area_power_arithmetic() {
        let a = AreaPower::new(1.0, 10.0);
        let b = AreaPower::new(2.0, 20.0);
        let s = a + b;
        assert!(close(s.area_mm2, 3.0) && close(s.power_mw, 30.0));
        let total: AreaPower = [a, b].into_iter().sum();
        assert_eq!(total, s);
        assert!(close(a.scaled(2.0).power_mw, 20.0));
    }
}
