//! Table 8: post-layout area and power of the four accelerators.

use crate::{dn_cost, mn_cost, psram_cost, rn_cost, str_cache_cost, AreaPower, RnKind};
use serde::{Deserialize, Serialize};

/// The four designs compared in Tables 7 and 8.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AcceleratorKind {
    /// SIGMA-like: FAN reduction network, no PSRAM.
    SigmaLike,
    /// SpArch-like: merger, 256 KiB PSRAM.
    SparchLike,
    /// GAMMA-like: merger, 128 KiB PSRAM.
    GammaLike,
    /// Flexagon: MRN, 256 KiB PSRAM.
    Flexagon,
}

impl AcceleratorKind {
    /// All four in Table 8 column order.
    pub const ALL: [AcceleratorKind; 4] = [
        AcceleratorKind::SigmaLike,
        AcceleratorKind::SparchLike,
        AcceleratorKind::GammaLike,
        AcceleratorKind::Flexagon,
    ];

    /// Display name matching the paper's column headers.
    pub fn name(self) -> &'static str {
        match self {
            Self::SigmaLike => "SIGMA-like",
            Self::SparchLike => "Sparch-like",
            Self::GammaLike => "GAMMA-like",
            Self::Flexagon => "Flexagon",
        }
    }

    /// The reduction/merger network this design uses (Table 7).
    pub fn rn_kind(self) -> RnKind {
        match self {
            Self::SigmaLike => RnKind::Fan,
            Self::SparchLike | Self::GammaLike => RnKind::Merger,
            Self::Flexagon => RnKind::Mrn,
        }
    }

    /// PSRAM capacity in bytes (Table 8's sizing).
    pub fn psram_bytes(self) -> u64 {
        match self {
            Self::SigmaLike => 0,
            Self::GammaLike => 128 << 10,
            Self::SparchLike | Self::Flexagon => 256 << 10,
        }
    }
}

/// One column of Table 8: the component breakdown of a design.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Table8Row {
    /// Which design this is.
    pub kind: AcceleratorKind,
    /// Distribution network.
    pub dn: AreaPower,
    /// Multiplier network.
    pub mn: AreaPower,
    /// Reduction/merger network.
    pub rn: AreaPower,
    /// Streaming cache.
    pub cache: AreaPower,
    /// Partial-sum SRAM.
    pub psram: AreaPower,
}

impl Table8Row {
    /// Builds the breakdown for `kind` at `multipliers` wide with a
    /// `cache_bytes` streaming cache.
    pub fn model(kind: AcceleratorKind, multipliers: u32, cache_bytes: u64) -> Self {
        Self {
            kind,
            dn: dn_cost(multipliers),
            mn: mn_cost(multipliers),
            rn: rn_cost(kind.rn_kind(), multipliers),
            cache: str_cache_cost(cache_bytes),
            psram: psram_cost(kind.psram_bytes()),
        }
    }

    /// Total design cost.
    pub fn total(&self) -> AreaPower {
        self.dn + self.mn + self.rn + self.cache + self.psram
    }
}

/// The full Table 8 at the paper's 64-multiplier, 1 MiB-cache design point.
pub fn table8_rows() -> Vec<Table8Row> {
    AcceleratorKind::ALL
        .into_iter()
        .map(|kind| Table8Row::model(kind, 64, 1 << 20))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(kind: AcceleratorKind) -> Table8Row {
        Table8Row::model(kind, 64, 1 << 20)
    }

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn totals_match_table8() {
        // Paper totals: SIGMA 4.21, Sparch 5.14, GAMMA 4.62, Flexagon 5.28 mm².
        assert!(close(
            row(AcceleratorKind::SigmaLike).total().area_mm2,
            4.21,
            0.02
        ));
        assert!(close(
            row(AcceleratorKind::SparchLike).total().area_mm2,
            5.14,
            0.02
        ));
        assert!(close(
            row(AcceleratorKind::GammaLike).total().area_mm2,
            4.62,
            0.02
        ));
        assert!(close(
            row(AcceleratorKind::Flexagon).total().area_mm2,
            5.28,
            0.02
        ));
    }

    #[test]
    fn power_totals_match_table8() {
        // Paper totals: 2396, 2750, 2481, 2998 mW (small rounding slack).
        assert!(close(
            row(AcceleratorKind::SigmaLike).total().power_mw,
            2396.0,
            6.0
        ));
        assert!(close(
            row(AcceleratorKind::SparchLike).total().power_mw,
            2750.0,
            6.0
        ));
        assert!(close(
            row(AcceleratorKind::GammaLike).total().power_mw,
            2481.0,
            6.0
        ));
        assert!(close(
            row(AcceleratorKind::Flexagon).total().power_mw,
            2998.0,
            6.0
        ));
    }

    #[test]
    fn flexagon_overheads_match_paper_percentages() {
        // "Flexagon introduces an overhead of 25%, 3% and 14% with respect
        // to the area of the SIGMA-like, Sparch-like and GAMMA-like".
        let f = row(AcceleratorKind::Flexagon).total().area_mm2;
        let sigma = row(AcceleratorKind::SigmaLike).total().area_mm2;
        let sparch = row(AcceleratorKind::SparchLike).total().area_mm2;
        let gamma = row(AcceleratorKind::GammaLike).total().area_mm2;
        assert!(close(f / sigma - 1.0, 0.25, 0.02));
        assert!(close(f / sparch - 1.0, 0.03, 0.02));
        assert!(close(f / gamma - 1.0, 0.14, 0.02));
    }

    #[test]
    fn cache_dominates_every_design() {
        // "the cache for the streaming matrix represents a 93%, 76%, 85%
        // and 74% of the total amount of area".
        let want = [0.93, 0.76, 0.85, 0.74];
        for (kind, want) in AcceleratorKind::ALL.into_iter().zip(want) {
            let r = row(kind);
            let frac = r.cache.area_mm2 / r.total().area_mm2;
            assert!(close(frac, want, 0.02), "{}: {frac}", kind.name());
        }
    }

    #[test]
    fn mrn_is_small_fraction_of_flexagon() {
        // "the MRN takes only a 4% out of the total area for Flexagon".
        let r = row(AcceleratorKind::Flexagon);
        let frac = r.rn.area_mm2 / r.total().area_mm2;
        assert!(close(frac, 0.04, 0.01), "{frac}");
    }

    #[test]
    fn sigma_has_no_psram() {
        assert_eq!(row(AcceleratorKind::SigmaLike).psram.area_mm2, 0.0);
    }

    #[test]
    fn rows_come_in_paper_order() {
        let kinds: Vec<_> = table8_rows().into_iter().map(|r| r.kind).collect();
        assert_eq!(kinds, AcceleratorKind::ALL.to_vec());
    }
}
