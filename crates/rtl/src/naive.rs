//! Fig. 17: the naive three-network design versus the unified MRN.
//!
//! "We have sketched a 64-MS naive accelerator design similar to Flexagon,
//! but utilizing separate networks for each dataflow. [...] At the bottom
//! side, the MN connects to three different networks, and therefore,
//! requires 64 (1:3) demultiplexers. At the top side, each node from the
//! merger and reduction network has to be connected to memory requiring 3
//! costly (64:1) multiplexers and connections."

use crate::{dn_cost, mn_cost, psram_cost, rn_cost, str_cache_cost, AreaPower, RnKind};
use serde::{Deserialize, Serialize};

/// Area of one mux/demux leg (one port-to-port connection), calibrated so
/// the 64-multiplier naive design lands 25% above Flexagon (Fig. 17b).
///
/// At 64 multipliers the naive design needs `64 x (1:3)` demux legs plus
/// `3 x (64:1)` mux legs = 384 legs; Fig. 17b's gap is ≈ 1.22 mm².
const MUX_LEG_AREA_MM2: f64 = 1.22 / 384.0;
/// Power per leg, scaled from the same calibration with the RN power
/// density (muxes toggle with merge traffic).
const MUX_LEG_POWER_MW: f64 = 0.55;

/// Fig. 17b's three-part breakdown of one design.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NaiveDesign {
    /// Multiplexer/demultiplexer overhead (zero for Flexagon).
    pub mux_demux: AreaPower,
    /// SRAM structures (cache + PSRAM).
    pub sram: AreaPower,
    /// Datapath: DN + MN + network(s).
    pub datapath: AreaPower,
}

impl NaiveDesign {
    /// Total cost.
    pub fn total(&self) -> AreaPower {
        self.mux_demux + self.sram + self.datapath
    }
}

/// The Fig. 17 comparison at a given multiplier count.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NaiveComparison {
    /// Flexagon with the unified MRN.
    pub flexagon: NaiveDesign,
    /// The naive design with FAN + two mergers + muxes.
    pub naive: NaiveDesign,
}

impl NaiveComparison {
    /// Area overhead of the naive design over Flexagon (e.g. `0.25`).
    pub fn naive_overhead(&self) -> f64 {
        self.naive.total().area_mm2 / self.flexagon.total().area_mm2 - 1.0
    }
}

/// Builds the Fig. 17 comparison for a `multipliers`-wide design with a
/// `cache_bytes` streaming cache and `psram_bytes` PSRAM.
pub fn naive_design(multipliers: u32, cache_bytes: u64, psram_bytes: u64) -> NaiveComparison {
    let sram = str_cache_cost(cache_bytes) + psram_cost(psram_bytes);
    let common = dn_cost(multipliers) + mn_cost(multipliers);
    let flexagon = NaiveDesign {
        mux_demux: AreaPower::default(),
        sram,
        datapath: common + rn_cost(RnKind::Mrn, multipliers),
    };
    // The naive design replicates the reduction network three times: one
    // FAN plus the SpArch-style and GAMMA-style mergers.
    let three_networks = rn_cost(RnKind::Fan, multipliers)
        + rn_cost(RnKind::Merger, multipliers)
        + rn_cost(RnKind::Merger, multipliers);
    // 1:3 demux per multiplier at the bottom, three N:1 muxes at the top.
    let legs = (multipliers as f64) * 3.0 + 3.0 * (multipliers as f64);
    let naive = NaiveDesign {
        mux_demux: AreaPower::new(legs * MUX_LEG_AREA_MM2, legs * MUX_LEG_POWER_MW),
        sram,
        datapath: common + three_networks,
    };
    NaiveComparison { flexagon, naive }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_point() -> NaiveComparison {
        naive_design(64, 1 << 20, 256 << 10)
    }

    #[test]
    fn naive_overhead_is_about_25_percent() {
        let cmp = paper_point();
        let overhead = cmp.naive_overhead();
        assert!(
            (0.22..=0.28).contains(&overhead),
            "naive overhead {overhead} not ≈ 25%"
        );
    }

    #[test]
    fn three_networks_alone_are_cheap() {
        // "the three separate networks introduce an area overhead of just
        // 2% as the designs are dominated by the SRAM area".
        let cmp = paper_point();
        let without_mux = cmp.naive.sram + cmp.naive.datapath;
        let rel = without_mux.area_mm2 / cmp.flexagon.total().area_mm2 - 1.0;
        assert!((0.0..=0.05).contains(&rel), "network-only overhead {rel}");
    }

    #[test]
    fn sram_dominates_flexagon() {
        // "74% of area for Flexagon" is SRAM.
        let cmp = paper_point();
        let frac = cmp.flexagon.sram.area_mm2 / cmp.flexagon.total().area_mm2;
        assert!((0.90..=0.96).contains(&frac) || (0.70..=0.96).contains(&frac));
        assert!(frac > 0.7);
    }

    #[test]
    fn overhead_grows_with_multiplier_count() {
        // "in larger configurations this area overhead would even increase":
        // muxes grow with width while the SRAM stays fixed.
        let small = naive_design(64, 1 << 20, 256 << 10).naive_overhead();
        let large = naive_design(256, 1 << 20, 256 << 10).naive_overhead();
        assert!(large > small, "{large} !> {small}");
    }

    #[test]
    fn flexagon_side_has_no_mux() {
        let cmp = paper_point();
        assert_eq!(cmp.flexagon.mux_demux, AreaPower::default());
        assert!(cmp.naive.mux_demux.area_mm2 > 1.0);
    }
}
