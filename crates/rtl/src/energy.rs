//! Activity-based energy model.
//!
//! The paper reports post-layout *power* (Table 8); STONNE-class simulators
//! additionally report per-run *energy* by charging each architectural
//! event an energy cost. This module derives per-event energies from the
//! calibrated Table 8 power numbers (power = energy x activity at the
//! design point) and folds an execution report's counters into a
//! breakdown — making designs comparable by energy-to-solution, not just
//! cycles.

use crate::AreaPower;
use flexagon_core::ExecutionReport;
use serde::{Deserialize, Serialize};

/// Per-event energy constants in picojoules.
///
/// Derived for TSMC 28 nm at 0.9 V from the Table 8 power figures at the
/// 800 MHz design point, assuming the reported power corresponds to full
/// utilization of the 16-element/cycle datapath. These are deliberately
/// simple constants: relative energy between designs is what the
/// comparison needs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyParams {
    /// One multiply-accumulate in the MN.
    pub mac_pj: f64,
    /// One element traversing the distribution network.
    pub dn_elem_pj: f64,
    /// One adder/comparator node operation in the RN/MRN.
    pub rn_op_pj: f64,
    /// One byte read or written in the STR cache.
    pub cache_byte_pj: f64,
    /// One byte read or written in the PSRAM.
    pub psram_byte_pj: f64,
    /// One byte moved to or from DRAM.
    pub dram_byte_pj: f64,
    /// Static leakage per cycle for the whole accelerator.
    pub leakage_per_cycle_pj: f64,
}

impl Default for EnergyParams {
    fn default() -> Self {
        Self {
            // 3.29 mW MN at 800 MHz over 64 lanes ≈ 0.06 pJ/MAC; rounded
            // up for the stationary register write.
            mac_pj: 0.08,
            // 2.18 mW DN at 16 elems/cycle ≈ 0.17 pJ/element.
            dn_elem_pj: 0.17,
            // 312 mW MRN at 800 MHz over 63 nodes, ~16 active/cycle.
            rn_op_pj: 0.9,
            // CACTI-class 1 MiB SRAM read ≈ 0.65 pJ/byte at 28 nm.
            cache_byte_pj: 0.65,
            // Smaller macro, shorter wires.
            psram_byte_pj: 0.45,
            // HBM2 ≈ 3.9 pJ/bit ≈ 31 pJ/byte; use a conservative 25.
            dram_byte_pj: 25.0,
            // ~10% of the 3 W total as leakage.
            leakage_per_cycle_pj: 0.37,
        }
    }
}

/// Energy consumed by one execution, by component.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// Multiplier network (MACs + forwards).
    pub mn_pj: f64,
    /// Distribution network traversals.
    pub dn_pj: f64,
    /// Reduction/merger network operations.
    pub rn_pj: f64,
    /// STR cache accesses.
    pub cache_pj: f64,
    /// PSRAM accesses.
    pub psram_pj: f64,
    /// Off-chip DRAM transfers.
    pub dram_pj: f64,
    /// Leakage over the run's cycles.
    pub leakage_pj: f64,
}

impl EnergyBreakdown {
    /// Total energy in picojoules.
    pub fn total_pj(&self) -> f64 {
        self.mn_pj
            + self.dn_pj
            + self.rn_pj
            + self.cache_pj
            + self.psram_pj
            + self.dram_pj
            + self.leakage_pj
    }

    /// Total energy in microjoules.
    pub fn total_uj(&self) -> f64 {
        self.total_pj() / 1e6
    }

    /// On-chip fraction of the total (everything but DRAM).
    pub fn onchip_fraction(&self) -> f64 {
        let t = self.total_pj();
        if t == 0.0 {
            0.0
        } else {
            (t - self.dram_pj) / t
        }
    }
}

/// Folds an execution report into an energy breakdown.
pub fn energy_of(report: &ExecutionReport, params: &EnergyParams) -> EnergyBreakdown {
    let c = &report.counters;
    let rn_ops = c.get("mrn.additions") + c.get("mrn.comparisons");
    EnergyBreakdown {
        mn_pj: (report.multiplications + c.get("mn.forwards")) as f64 * params.mac_pj,
        dn_pj: c.get("dn.delivered") as f64 * params.dn_elem_pj,
        rn_pj: rn_ops as f64 * params.rn_op_pj,
        cache_pj: (report.traffic.str_onchip_bytes + report.traffic.str_fill_bytes) as f64
            * params.cache_byte_pj,
        psram_pj: report.traffic.psum_onchip_bytes as f64 * params.psram_byte_pj,
        dram_pj: report.traffic.offchip_total() as f64 * params.dram_byte_pj,
        leakage_pj: report.total_cycles as f64 * params.leakage_per_cycle_pj,
    }
}

/// Average power implied by a run at the given clock, in milliwatts —
/// lets the activity model be sanity-checked against Table 8.
pub fn average_power_mw(breakdown: &EnergyBreakdown, cycles: u64, clock_hz: f64) -> f64 {
    if cycles == 0 {
        return 0.0;
    }
    let seconds = cycles as f64 / clock_hz;
    breakdown.total_pj() / 1e9 / seconds
}

/// Energy-delay product in pJ·cycles — the composite metric used to rank
/// designs that trade energy against speed.
pub fn energy_delay_pj_cycles(breakdown: &EnergyBreakdown, cycles: u64) -> f64 {
    breakdown.total_pj() * cycles as f64
}

/// Convenience: the design-point total power of Table 8 for cross-checks.
pub fn table8_power_reference() -> AreaPower {
    crate::table8_rows()
        .iter()
        .find(|r| r.kind == crate::AcceleratorKind::Flexagon)
        .expect("flexagon row present")
        .total()
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexagon_core::{Accelerator, AcceleratorConfig, Dataflow, ExecutionRequest, Flexagon};
    use flexagon_sparse::{gen, MajorOrder};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn sample_report(df: Dataflow) -> ExecutionReport {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let a = gen::random(32, 48, 0.3, MajorOrder::Row, &mut rng);
        let b = gen::random(48, 40, 0.4, MajorOrder::Row, &mut rng);
        Flexagon::new(AcceleratorConfig::table5())
            .execute(ExecutionRequest::new(&a, &b).dataflow(df))
            .unwrap()
            .output
            .report
    }

    #[test]
    fn energy_is_positive_and_componentwise() {
        let e = energy_of(
            &sample_report(Dataflow::GustavsonM),
            &EnergyParams::default(),
        );
        assert!(e.mn_pj > 0.0);
        assert!(e.dn_pj > 0.0);
        assert!(e.dram_pj > 0.0);
        assert!(e.total_pj() > e.dram_pj);
        assert!((0.0..=1.0).contains(&e.onchip_fraction()));
    }

    #[test]
    fn inner_product_spends_nothing_on_psram() {
        let e = energy_of(
            &sample_report(Dataflow::InnerProductM),
            &EnergyParams::default(),
        );
        assert_eq!(e.psram_pj, 0.0);
    }

    #[test]
    fn outer_product_pays_psum_energy() {
        let e = energy_of(
            &sample_report(Dataflow::OuterProductM),
            &EnergyParams::default(),
        );
        assert!(e.psram_pj > 0.0);
    }

    #[test]
    fn average_power_is_in_watt_range() {
        let r = sample_report(Dataflow::GustavsonM);
        let e = energy_of(&r, &EnergyParams::default());
        let p = average_power_mw(&e, r.total_cycles, 800e6);
        // Within an order of magnitude of Table 8's ~3 W budget.
        assert!(p > 50.0 && p < 30_000.0, "power {p} mW out of range");
    }

    #[test]
    fn edp_scales_with_both_terms() {
        let r = sample_report(Dataflow::GustavsonM);
        let e = energy_of(&r, &EnergyParams::default());
        let edp = energy_delay_pj_cycles(&e, r.total_cycles);
        assert!(edp > e.total_pj());
    }

    #[test]
    fn zero_cycles_zero_power() {
        let e = EnergyBreakdown::default();
        assert_eq!(average_power_mw(&e, 0, 800e6), 0.0);
        assert_eq!(e.onchip_fraction(), 0.0);
    }

    #[test]
    fn table8_reference_is_flexagon_total() {
        let p = table8_power_reference();
        assert!((p.power_mw - 2998.0).abs() < 10.0);
    }
}
